//! Latency statistics: percentile histograms and cost breakdowns.
//!
//! The evaluation reports P50/P99 end-to-end function latencies (Fig. 10)
//! and stacked cost breakdowns (Fig. 7a). [`LatencyHistogram`] and
//! [`Breakdown`] are the two reporting primitives behind those.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::SimDuration;

/// An exact-percentile latency recorder.
///
/// Samples are kept verbatim (the experiments record at most a few hundred
/// thousand invocations), so percentiles are exact rather than approximated.
///
/// # Example
///
/// ```
/// use simclock::{SimDuration, stats::LatencyHistogram};
///
/// let mut h = LatencyHistogram::new();
/// for ms in 1..=100 {
///     h.record(SimDuration::from_millis(ms));
/// }
/// assert_eq!(h.percentile(0.50).as_millis(), 50);
/// assert_eq!(h.percentile(0.99).as_millis(), 99);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    samples: Vec<SimDuration>,
    sorted: bool,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d);
        self.sorted = false;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Merges all samples from `other` into `self`.
    ///
    /// Merging an empty `other` is a no-op: it neither perturbs the samples
    /// nor invalidates an already-sorted sample buffer.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.samples.is_empty() {
            return;
        }
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// Returns the exact `q`-quantile (`q` in `[0, 1]`) using the
    /// nearest-rank method. Returns [`SimDuration::ZERO`] when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn percentile(&mut self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0,1]");
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        self.samples[rank - 1]
    }

    /// Median (P50).
    pub fn p50(&mut self) -> SimDuration {
        self.percentile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&mut self) -> SimDuration {
        self.percentile(0.99)
    }

    /// Arithmetic mean. Returns [`SimDuration::ZERO`] when empty.
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u128 = self.samples.iter().map(|d| d.as_nanos() as u128).sum();
        SimDuration::from_nanos((total / self.samples.len() as u128) as u64)
    }

    /// Largest sample, or zero when empty.
    pub fn max(&mut self) -> SimDuration {
        self.ensure_sorted();
        self.samples.last().copied().unwrap_or(SimDuration::ZERO)
    }

    /// Smallest sample, or zero when empty.
    pub fn min(&mut self) -> SimDuration {
        self.ensure_sorted();
        self.samples.first().copied().unwrap_or(SimDuration::ZERO)
    }
}

/// A named-bucket cost breakdown, e.g. `Restore / Page Faults / Execution`
/// (Fig. 7a).
///
/// Buckets are created on first charge and iterate in insertion-independent
/// (sorted) order for stable reporting.
///
/// # Example
///
/// ```
/// use simclock::{SimDuration, stats::Breakdown};
///
/// let mut b = Breakdown::new();
/// b.charge("restore", SimDuration::from_millis(3));
/// b.charge("faults", SimDuration::from_millis(1));
/// b.charge("restore", SimDuration::from_millis(2));
/// assert_eq!(b.get("restore").as_millis(), 5);
/// assert_eq!(b.total().as_millis(), 6);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Breakdown {
    buckets: BTreeMap<String, SimDuration>,
}

impl Breakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Breakdown::default()
    }

    /// Adds `cost` to the named bucket.
    pub fn charge(&mut self, bucket: &str, cost: SimDuration) {
        *self
            .buckets
            .entry(bucket.to_owned())
            .or_insert(SimDuration::ZERO) += cost;
    }

    /// Returns the accumulated cost of `bucket` (zero if absent).
    pub fn get(&self, bucket: &str) -> SimDuration {
        self.buckets
            .get(bucket)
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Sum over all buckets.
    pub fn total(&self) -> SimDuration {
        self.buckets.values().copied().sum()
    }

    /// Iterates `(bucket, cost)` pairs in sorted bucket-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, SimDuration)> {
        self.buckets.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges another breakdown into this one, bucket by bucket.
    pub fn merge(&mut self, other: &Breakdown) {
        for (k, v) in other.iter() {
            self.charge(k, v);
        }
    }

    /// `true` if no bucket has been charged.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.buckets.is_empty() {
            return write!(f, "(empty breakdown)");
        }
        let mut first = true;
        for (k, v) in self.iter() {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{k}={v}")?;
            first = false;
        }
        write!(f, " = {}", self.total())
    }
}

/// A monotonically growing event counter set, used for fault and access
/// accounting.
///
/// # Example
///
/// ```
/// use simclock::stats::Counters;
///
/// let mut c = Counters::new();
/// c.add("cow_fault", 3);
/// c.incr("cow_fault");
/// assert_eq!(c.get("cow_fault"), 4);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    counts: BTreeMap<String, u64>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `n` to the named counter.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counts.entry(name.to_owned()).or_insert(0) += n;
    }

    /// Adds one to the named counter.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Returns the counter value (zero if absent).
    pub fn get(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// Iterates `(name, count)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zero() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50(), SimDuration::ZERO);
        assert_eq!(h.p99(), SimDuration::ZERO);
        assert_eq!(h.mean(), SimDuration::ZERO);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_millis(42));
        assert_eq!(h.percentile(0.0).as_millis(), 42);
        assert_eq!(h.p50().as_millis(), 42);
        assert_eq!(h.p99().as_millis(), 42);
        assert_eq!(h.max().as_millis(), 42);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut h = LatencyHistogram::new();
        for ms in [10u64, 20, 30, 40] {
            h.record(SimDuration::from_millis(ms));
        }
        assert_eq!(h.p50().as_millis(), 20);
        assert_eq!(h.percentile(0.75).as_millis(), 30);
        assert_eq!(h.p99().as_millis(), 40);
        assert_eq!(h.min().as_millis(), 10);
    }

    #[test]
    fn empty_histogram_percentile_edges_do_not_panic() {
        // Regression: every quantile of an empty histogram — including the
        // extreme ranks q=0.0 and q=1.0 — must return zero rather than
        // indexing an empty sample buffer.
        let mut h = LatencyHistogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), SimDuration::ZERO, "q={q}");
        }
        assert_eq!(h.min(), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::ZERO);
    }

    #[test]
    fn full_quantile_returns_true_max() {
        // Regression: q=1.0 must select the last sorted sample (the true
        // max), not run off the end or stop one rank short.
        let mut h = LatencyHistogram::new();
        for ms in [7u64, 3, 99, 12, 54] {
            h.record(SimDuration::from_millis(ms));
        }
        assert_eq!(h.percentile(1.0).as_millis(), 99);
        assert_eq!(h.percentile(1.0), h.max());
        // And q=0.0 clamps to the first rank (the true min).
        assert_eq!(h.percentile(0.0).as_millis(), 3);
    }

    #[test]
    fn merge_with_empty_other_is_a_noop() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_millis(5));
        h.record(SimDuration::from_millis(1));
        let p50 = h.p50(); // forces a sort
        let before = h.clone();
        h.merge(&LatencyHistogram::new());
        assert_eq!(h, before, "empty merge must not perturb the histogram");
        assert_eq!(h.len(), 2);
        assert_eq!(h.p50(), p50);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn percentile_rejects_out_of_range() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::ZERO);
        let _ = h.percentile(1.5);
    }

    #[test]
    fn merged_percentiles_equal_single_histogram() {
        // Per-node histograms folded with `merge` must report the exact
        // same percentiles as recording every sample into one histogram
        // directly — merging moves samples, it does not approximate.
        let mut merged = LatencyHistogram::new();
        let mut single = LatencyHistogram::new();
        let mut node = LatencyHistogram::new();
        for i in 0u64..200 {
            // Deterministic, interleaved, non-monotonic sample stream
            // split across 4 "nodes".
            let d = SimDuration::from_nanos((i * 7919) % 1000 + 1);
            single.record(d);
            node.record(d);
            if i % 50 == 49 {
                merged.merge(&node);
                node = LatencyHistogram::new();
            }
        }
        assert_eq!(merged.len(), single.len());
        for q in [0.0, 0.25, 0.50, 0.90, 0.99, 1.0] {
            assert_eq!(
                merged.percentile(q),
                single.percentile(q),
                "quantile {q} drifted after merge"
            );
        }
        assert_eq!(merged.mean(), single.mean());
        assert_eq!(merged.min(), single.min());
        assert_eq!(merged.max(), single.max());
    }

    #[test]
    fn histogram_merge_combines_samples() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimDuration::from_millis(1));
        b.record(SimDuration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.mean().as_millis(), 2);
    }

    #[test]
    fn breakdown_accumulates_and_totals() {
        let mut b = Breakdown::new();
        b.charge("x", SimDuration::from_nanos(10));
        b.charge("y", SimDuration::from_nanos(5));
        b.charge("x", SimDuration::from_nanos(1));
        assert_eq!(b.get("x").as_nanos(), 11);
        assert_eq!(b.get("absent"), SimDuration::ZERO);
        assert_eq!(b.total().as_nanos(), 16);
        let keys: Vec<_> = b.iter().map(|(k, _)| k.to_owned()).collect();
        assert_eq!(keys, vec!["x", "y"]);
    }

    #[test]
    fn breakdown_merge_and_display() {
        let mut a = Breakdown::new();
        a.charge("restore", SimDuration::from_millis(1));
        let mut b = Breakdown::new();
        b.charge("restore", SimDuration::from_millis(2));
        b.charge("faults", SimDuration::from_millis(4));
        a.merge(&b);
        assert_eq!(a.get("restore").as_millis(), 3);
        assert_eq!(a.get("faults").as_millis(), 4);
        let s = a.to_string();
        assert!(s.contains("restore=3.000ms"), "{s}");
        assert_eq!(Breakdown::new().to_string(), "(empty breakdown)");
    }

    #[test]
    fn counters_track_events() {
        let mut c = Counters::new();
        c.incr("a");
        c.add("a", 2);
        c.add("b", 7);
        let mut d = Counters::new();
        d.add("b", 3);
        c.merge(&d);
        assert_eq!(c.get("a"), 3);
        assert_eq!(c.get("b"), 10);
        assert_eq!(c.get("zzz"), 0);
    }
}
