//! The virtual clock.

use crate::{SimDuration, SimTime};

/// A monotonically advancing virtual clock.
///
/// Each simulated node owns a `SimClock`; global experiment drivers may also
/// keep one per logical timeline. The clock never goes backwards and is only
/// advanced explicitly, which keeps the whole simulation deterministic.
///
/// # Example
///
/// ```
/// use simclock::{SimClock, SimDuration};
///
/// let mut clock = SimClock::new();
/// clock.advance(SimDuration::from_micros(5));
/// let start = clock.now();
/// clock.advance(SimDuration::from_micros(3));
/// assert_eq!(clock.now() - start, SimDuration::from_micros(3));
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// Creates a clock at the simulation epoch.
    pub fn new() -> Self {
        SimClock { now: SimTime::ZERO }
    }

    /// Creates a clock starting at an arbitrary point, e.g. to resume a
    /// timeline.
    pub fn starting_at(now: SimTime) -> Self {
        SimClock { now }
    }

    /// The current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `d` and returns the new time.
    #[inline]
    pub fn advance(&mut self, d: SimDuration) -> SimTime {
        self.now += d;
        self.now
    }

    /// Advances the clock to `t` if `t` is in the future; otherwise leaves
    /// the clock untouched. Returns the (possibly unchanged) current time.
    ///
    /// This is the primitive used when merging per-node timelines: an event
    /// that completed at `t` on another node cannot be observed before `t`.
    #[inline]
    pub fn advance_to(&mut self, t: SimTime) -> SimTime {
        if t > self.now {
            self.now = t;
        }
        self.now
    }

    /// Runs `f`, charging its returned cost to the clock, and returns the
    /// cost.
    ///
    /// A convenience for the common "perform a modelled operation and account
    /// for it" pattern.
    pub fn charge<F>(&mut self, f: F) -> SimDuration
    where
        F: FnOnce() -> SimDuration,
    {
        let cost = f();
        self.advance(cost);
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(SimClock::new().now(), SimTime::ZERO);
    }

    #[test]
    fn advance_accumulates() {
        let mut c = SimClock::new();
        c.advance(SimDuration::from_nanos(10));
        c.advance(SimDuration::from_nanos(20));
        assert_eq!(c.now().as_nanos(), 30);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let mut c = SimClock::starting_at(SimTime::from_nanos(100));
        c.advance_to(SimTime::from_nanos(50));
        assert_eq!(c.now().as_nanos(), 100);
        c.advance_to(SimTime::from_nanos(150));
        assert_eq!(c.now().as_nanos(), 150);
    }

    #[test]
    fn charge_advances_by_closure_cost() {
        let mut c = SimClock::new();
        let cost = c.charge(|| SimDuration::from_micros(7));
        assert_eq!(cost, SimDuration::from_micros(7));
        assert_eq!(c.now().as_nanos(), 7_000);
    }
}
