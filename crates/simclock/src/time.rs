//! Nanosecond-granularity virtual time types.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A span of virtual time, in integer nanoseconds.
///
/// `SimDuration` is the unit in which every modelled cost in the simulation
/// is expressed. It is a thin wrapper over `u64`; arithmetic saturates
/// rather than wrapping so that pathological parameter combinations degrade
/// gracefully instead of corrupting measurements.
///
/// # Example
///
/// ```
/// use simclock::SimDuration;
///
/// let fault = SimDuration::from_micros(2) + SimDuration::from_nanos(500);
/// assert_eq!(fault.as_nanos(), 2_500);
/// assert_eq!(fault * 4, SimDuration::from_micros(10));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    ///
    /// Saturates at [`SimDuration::MAX`].
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us.saturating_mul(1_000))
    }

    /// Creates a duration from milliseconds.
    ///
    /// Saturates at [`SimDuration::MAX`].
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    /// Creates a duration from whole seconds.
    ///
    /// Saturates at [`SimDuration::MAX`].
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(1_000_000_000))
    }

    /// Creates a duration from a floating-point number of seconds.
    ///
    /// Negative and non-finite inputs clamp to zero; overly large inputs
    /// saturate.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Returns the duration in whole nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in whole microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration in whole milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the duration as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns `true` if the duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    #[inline]
    pub const fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction; clamps at zero.
    #[inline]
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the duration by a floating point factor, saturating.
    ///
    /// Useful for proportional cost scaling (e.g. per-byte costs). Negative
    /// or non-finite factors clamp to zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        if !factor.is_finite() || factor <= 0.0 {
            return SimDuration::ZERO;
        }
        let v = self.0 as f64 * factor;
        if v >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(v as u64)
        }
    }

    /// Returns the ratio of `self` to `other` as `f64`.
    ///
    /// Returns `f64::INFINITY` if `other` is zero and `self` is not, and
    /// `1.0` when both are zero (two absent costs are "equal").
    pub fn ratio(self, other: SimDuration) -> f64 {
        if other.0 == 0 {
            if self.0 == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        self.saturating_add(rhs)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// Integer division of the duration.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// An instant of virtual time, measured as nanoseconds since simulation
/// start.
///
/// # Example
///
/// ```
/// use simclock::{SimDuration, SimTime};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_millis(5);
/// assert_eq!(t1.duration_since(t0), SimDuration::from_millis(5));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time point from nanoseconds since the epoch.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns fractional seconds since the epoch.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the span from `earlier` to `self`, clamping at zero if
    /// `earlier` is in the future.
    #[inline]
    pub const fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    #[inline]
    pub const fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.as_nanos()))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_scale() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn duration_saturates_instead_of_overflowing() {
        let max = SimDuration::MAX;
        assert_eq!(max + SimDuration::from_nanos(1), SimDuration::MAX);
        assert_eq!(max * 3, SimDuration::MAX);
        assert_eq!(SimDuration::from_secs(u64::MAX), SimDuration::MAX);
    }

    #[test]
    fn duration_sub_clamps_at_zero() {
        let a = SimDuration::from_nanos(5);
        let b = SimDuration::from_nanos(9);
        assert_eq!(a - b, SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_handles_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn mul_f64_scales_and_clamps() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(5));
        assert_eq!(d.mul_f64(-3.0), SimDuration::ZERO);
        assert_eq!(d.mul_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let z = SimDuration::ZERO;
        let d = SimDuration::from_nanos(100);
        assert_eq!(d.ratio(z), f64::INFINITY);
        assert_eq!(z.ratio(z), 1.0);
        assert!((d.ratio(SimDuration::from_nanos(50)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimDuration::from_millis(7);
        assert_eq!(t.as_nanos(), 7_000_000);
        assert_eq!(t - SimTime::ZERO, SimDuration::from_millis(7));
        assert_eq!(SimTime::ZERO - t, SimDuration::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
        assert_eq!(SimTime::from_nanos(1500).to_string(), "t+1.500us");
    }

    #[test]
    fn sum_accumulates() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total, SimDuration::from_nanos(10));
    }
}
