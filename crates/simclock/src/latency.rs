//! The calibrated latency model.
//!
//! Every modelled cost in the simulation is derived from the constants in
//! [`LatencyModel`]. The defaults come from the measurements reported in the
//! CXLfork paper for its Sapphire Rapids + Agilex-7 testbed (§4.2.1, §5, §6):
//!
//! * CXL round-trip latency: **391 ns** (Intel MLC measurement, §6.1).
//! * Local DRAM round trip: **~100 ns** (the paper's Fig. 9 calls 200 ns
//!   "2x the latency of local memory").
//! * CXL copy-on-write fault: **≈2.5 µs**, of which **≈1.3 µs** is data
//!   movement and **≈500 ns** TLB-coherence maintenance (§4.2.1).
//! * Regular local anonymous fault: **<1 µs** (§4.2.1).
//! * Container creation: **≈130 ms**; bare container footprint 512 KiB (§5).

use serde::{Deserialize, Serialize};

use crate::SimDuration;

/// Size of a small (base) page in bytes, shared by the whole simulation.
pub const PAGE_SIZE: u64 = 4096;

/// Calibrated cost constants for the simulation.
///
/// The struct is plain configuration data: fields are public and may be
/// adjusted directly or through [`LatencyModelBuilder`]. Use
/// [`LatencyModel::calibrated`] for the paper-faithful defaults.
///
/// # Example
///
/// ```
/// use simclock::LatencyModel;
///
/// let model = LatencyModel::calibrated();
/// assert_eq!(model.cxl_read_round_trip().as_nanos(), 391);
/// // Fig. 9 sweeps the CXL latency directly:
/// let fast = LatencyModel::builder().cxl_round_trip_ns(100).build();
/// assert!(fast.cxl_cow_fault() < model.cxl_cow_fault());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Round-trip latency of one cache-line access to CXL-attached memory.
    pub cxl_round_trip_ns: u64,
    /// Round-trip latency of one cache-line access to node-local DRAM.
    pub local_round_trip_ns: u64,
    /// Latency of an LLC hit, charged per modelled access burst.
    pub cache_hit_ns: u64,

    /// Effective bandwidth copying bulk data between local DRAM buffers
    /// (bytes per nanosecond ≙ GB/s).
    pub local_copy_bytes_per_ns: f64,
    /// Effective bandwidth copying bulk data to/from the CXL device with
    /// non-temporal stores (§8 "Hardware Requirements").
    pub cxl_copy_bytes_per_ns: f64,
    /// Effective bandwidth of bulk *writes* to the CXL device using
    /// non-temporal (write-combining) stores, which avoid the
    /// read-for-ownership round trip and stream faster than reads (§8).
    /// This is the checkpoint-copy path.
    pub cxl_write_bytes_per_ns: f64,

    /// Fixed kernel-entry + handler overhead of any page fault.
    pub fault_base_ns: u64,
    /// Cost of zero-filling a fresh anonymous page (on top of the base).
    pub anon_zero_fill_ns: u64,
    /// Cost of one TLB shootdown round (§4.2.1 measures ≈500 ns).
    pub tlb_shootdown_ns: u64,
    /// Cost of reading one page from the (shared) root filesystem on a major
    /// fault.
    pub file_read_page_ns: u64,

    /// Per-byte cost of serializing state into a CRIU-style image.
    pub serialize_ns_per_byte: f64,
    /// Per-byte cost of parsing a CRIU-style image back into live state.
    pub deserialize_ns_per_byte: f64,
    /// Fixed cost of opening/creating one image file on the shared fs.
    pub image_file_open_ns: u64,

    /// Effective bandwidth fingerprinting page content for the
    /// content-addressed store (an xxh3-class hash running out of local
    /// DRAM; only the intern path pays it).
    pub fingerprint_bytes_per_ns: f64,

    /// Per-PTE cost of Mitosis-style OS-state descriptor encoding.
    pub descriptor_encode_pte_ns: u64,
    /// Per-PTE cost of Mitosis-style OS-state descriptor decoding on the
    /// restore node.
    pub descriptor_decode_pte_ns: u64,

    /// Cost of duplicating one PTE during a local fork (copying parent page
    /// tables and applying CoW protection).
    pub fork_pte_copy_ns: u64,
    /// Cost of duplicating one VMA during a local fork.
    pub fork_vma_copy_ns: u64,
    /// Fixed skeleton cost of creating a task (local fork or restore stub).
    pub process_create_ns: u64,

    /// Cost of allocating + initializing one upper-level page-table page on
    /// restore.
    pub pt_upper_alloc_ns: u64,
    /// Cost of attaching one checkpointed page-table leaf (linking a CXL
    /// offset into the local upper levels, §4.2.1).
    pub pt_leaf_attach_ns: u64,
    /// Cost of attaching one checkpointed VMA-tree leaf block.
    pub vma_leaf_attach_ns: u64,
    /// Cost of re-opening one file descriptor / file mapping from its
    /// checkpointed path during global-state restore (§4.2).
    pub file_reopen_ns: u64,
    /// Cost of rebasing one internal pointer during checkpoint (§4.1 step 7).
    pub rebase_pointer_ns: u64,

    /// Cost of setting up a new container (network, namespaces, cgroups;
    /// §5 measures ≈130 ms).
    pub container_create_ns: u64,
    /// Cost of signalling a ghost container's control socket and having it
    /// issue the restore request.
    pub ghost_trigger_ns: u64,
}

impl LatencyModel {
    /// The paper-calibrated default model.
    pub fn calibrated() -> Self {
        LatencyModel {
            cxl_round_trip_ns: 391,
            local_round_trip_ns: 100,
            cache_hit_ns: 4,

            // ~12.8 GB/s local stream copy; CXL page copy of 4 KiB in
            // ≈1.3 µs (§4.2.1) → ≈3.15 bytes/ns. Non-temporal streaming
            // writes run faster (~8 GB/s), which is why Mitosis (local
            // checkpoint) checkpoints only ≈1.5× faster than CXLfork
            // (CXL checkpoint) despite the latency gap (§7.1).
            local_copy_bytes_per_ns: 12.8,
            cxl_copy_bytes_per_ns: 3.15,
            cxl_write_bytes_per_ns: 8.0,

            fault_base_ns: 450,
            anon_zero_fill_ns: 400,
            tlb_shootdown_ns: 500,
            file_read_page_ns: 6_500,

            // CRIU restore of a 630 MB BERT instance takes ≈423 ms in the
            // paper; deserialization dominates.
            serialize_ns_per_byte: 1.55,
            deserialize_ns_per_byte: 0.42,
            image_file_open_ns: 25_000,

            // xxh3-class content hash out of local DRAM (~25 GB/s):
            // cheaper per page than the gather copy, so fingerprinting
            // never becomes the pipeline bottleneck stage.
            fingerprint_bytes_per_ns: 25.6,

            // Mitosis restore of BERT (≈161k PTEs) takes ≈15 ms.
            descriptor_encode_pte_ns: 35,
            descriptor_decode_pte_ns: 60,

            fork_pte_copy_ns: 9,
            fork_vma_copy_ns: 950,
            process_create_ns: 250_000,

            pt_upper_alloc_ns: 900,
            pt_leaf_attach_ns: 140,
            vma_leaf_attach_ns: 220,
            file_reopen_ns: 16_000,
            rebase_pointer_ns: 6,

            container_create_ns: 130_000_000,
            ghost_trigger_ns: 450_000,
        }
    }

    /// Starts building a model from the calibrated defaults.
    pub fn builder() -> LatencyModelBuilder {
        LatencyModelBuilder {
            model: LatencyModel::calibrated(),
        }
    }

    /// One cache-line round trip to the CXL device.
    #[inline]
    pub fn cxl_read_round_trip(&self) -> SimDuration {
        SimDuration::from_nanos(self.cxl_round_trip_ns)
    }

    /// One cache-line round trip to local DRAM.
    #[inline]
    pub fn local_read_round_trip(&self) -> SimDuration {
        SimDuration::from_nanos(self.local_round_trip_ns)
    }

    /// An LLC hit.
    #[inline]
    pub fn cache_hit(&self) -> SimDuration {
        SimDuration::from_nanos(self.cache_hit_ns)
    }

    /// Copying `bytes` between local DRAM buffers.
    pub fn local_copy(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.local_copy_bytes_per_ns / 1e9)
    }

    /// Copying `bytes` to or from the CXL device.
    pub fn cxl_copy(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.cxl_copy_bytes_per_ns / 1e9)
    }

    /// Streaming `bytes` *to* the CXL device with non-temporal stores
    /// (checkpoint copies, §8).
    pub fn cxl_write_copy(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.cxl_write_bytes_per_ns / 1e9)
    }

    /// A regular local anonymous (zero-fill) fault: base + fill; the paper
    /// reports "<1 µs".
    pub fn local_anon_fault(&self) -> SimDuration {
        SimDuration::from_nanos(self.fault_base_ns + self.anon_zero_fill_ns)
    }

    /// A local copy-on-write fault: base + local page copy + TLB shootdown.
    pub fn local_cow_fault(&self) -> SimDuration {
        SimDuration::from_nanos(self.fault_base_ns + self.tlb_shootdown_ns)
            + self.local_copy(PAGE_SIZE)
    }

    /// A CXL copy-on-write fault: base + page copy over CXL + TLB shootdown.
    /// Calibrated to ≈2.5 µs (§4.2.1).
    pub fn cxl_cow_fault(&self) -> SimDuration {
        SimDuration::from_nanos(self.fault_base_ns + self.tlb_shootdown_ns)
            + self.cxl_copy(PAGE_SIZE)
    }

    /// A migrate-on-access CXL fault (same data path as a CXL CoW fault, but
    /// no pre-existing mapping to shoot down).
    pub fn cxl_pull_fault(&self) -> SimDuration {
        SimDuration::from_nanos(self.fault_base_ns) + self.cxl_copy(PAGE_SIZE)
    }

    /// A major fault reading one page from the shared root filesystem.
    pub fn file_major_fault(&self) -> SimDuration {
        SimDuration::from_nanos(self.fault_base_ns + self.file_read_page_ns)
    }

    /// A minor fault mapping an already-resident page.
    pub fn minor_fault(&self) -> SimDuration {
        SimDuration::from_nanos(self.fault_base_ns + 150)
    }

    /// Prefetching one dirty page into local memory during restore (bulk
    /// path: no trap, no per-page shootdown — the mapping is not yet live).
    pub fn prefetch_page(&self) -> SimDuration {
        self.cxl_copy(PAGE_SIZE)
    }

    /// Reading `pages` whole pages from the device as **one batched,
    /// pipelined transfer**: the first page pays the full scalar cost
    /// ([`LatencyModel::cxl_copy`] of one page, which includes the
    /// request round trip), and every further page is pipelined behind
    /// it, paying only the transfer portion (scalar cost minus one
    /// round trip). Batch-of-1 therefore costs *exactly* the scalar
    /// path, and an `n`-page batch is strictly cheaper than `n` scalar
    /// reads whenever the round trip is non-zero. Zero pages cost zero.
    ///
    /// Both terms derive from swept model fields, so the Fig. 9 latency
    /// sensitivity sweep (which scales round trip and bandwidth
    /// together) stays reproducible.
    pub fn cxl_batch_read(&self, pages: u64) -> SimDuration {
        if pages == 0 {
            return SimDuration::ZERO;
        }
        let scalar = self.cxl_copy(PAGE_SIZE);
        let pipelined = scalar.saturating_sub(self.cxl_read_round_trip());
        scalar + pipelined * (pages - 1)
    }

    /// Writing `pages` whole pages to the device as one batched
    /// non-temporal stream.
    ///
    /// Unlike [`LatencyModel::cxl_batch_read`] there is no round-trip
    /// discount to claim: the scalar write cost
    /// ([`LatencyModel::cxl_write_copy`] of one page) is *already* pure
    /// streaming bandwidth — non-temporal stores post without waiting
    /// for a per-page completion, which is why `cxl_write_bytes_per_ns`
    /// beats `cxl_copy_bytes_per_ns` in the first place. Subtracting a
    /// round trip here would double-count that pipelining and let a
    /// batch outrun the fabric's write bandwidth. An `n`-page batch
    /// therefore costs exactly `n` scalar writes (batch-of-1 ≡ scalar
    /// trivially); the batch API still wins on lock traffic and fault
    /// cadence, and the latency win lives on the read side.
    pub fn cxl_batch_write(&self, pages: u64) -> SimDuration {
        self.cxl_write_copy(PAGE_SIZE) * pages
    }

    /// Prefetching `pages` dirty pages during restore as one batched
    /// transfer (the batch form of [`LatencyModel::prefetch_page`]).
    pub fn prefetch_pages(&self, pages: u64) -> SimDuration {
        self.cxl_batch_read(pages)
    }

    /// Reading `extra` *additional* file pages piggybacked on a major
    /// fault (read-ahead fill): the trap and handler were already paid
    /// by the triggering fault, so each extra page costs only the media
    /// read.
    pub fn file_readahead(&self, extra: u64) -> SimDuration {
        SimDuration::from_nanos(self.file_read_page_ns) * extra
    }

    /// Creating a container from scratch (≈130 ms, §5).
    pub fn container_create(&self) -> SimDuration {
        SimDuration::from_nanos(self.container_create_ns)
    }

    /// Waking a ghost container to issue a restore.
    pub fn ghost_trigger(&self) -> SimDuration {
        SimDuration::from_nanos(self.ghost_trigger_ns)
    }

    /// Fingerprinting one page of content for the content-addressed
    /// store (local DRAM hash; not a fabric operation, so the Fig. 9
    /// round-trip sweep leaves it untouched).
    pub fn fingerprint_page(&self) -> SimDuration {
        SimDuration::from_secs_f64(PAGE_SIZE as f64 / self.fingerprint_bytes_per_ns / 1e9)
    }

    /// A view of this model that costs batched transfers as `parallelism`
    /// overlapped per-shard streams instead of one serial stream. See
    /// [`PipelineModel`]; `parallelism <= 1` reproduces the serial costs
    /// bit-for-bit.
    pub fn pipeline(&self, parallelism: u32) -> PipelineModel<'_> {
        PipelineModel {
            model: self,
            parallelism,
            queue_delay: SimDuration::ZERO,
        }
    }

    /// The queueing-delay curve of one fabric port at this model's
    /// calibration point: streaming write bandwidth as the drain rate
    /// over a `window_ns`-wide virtual-time window. At zero in-flight
    /// bytes the delay is exactly zero, which is what keeps the flat
    /// [`LatencyModel::cxl_read_round_trip`] model intact for an
    /// uncontended fabric.
    pub fn port_queueing_curve(&self, window_ns: u64) -> QueueingCurve {
        QueueingCurve::new(self.cxl_write_bytes_per_ns, window_ns)
    }

    /// Serializing `bytes` into an image.
    pub fn serialize(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * self.serialize_ns_per_byte / 1e9)
    }

    /// Deserializing `bytes` from an image.
    pub fn deserialize(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * self.deserialize_ns_per_byte / 1e9)
    }
}

impl Default for LatencyModel {
    /// Same as [`LatencyModel::calibrated`].
    fn default() -> Self {
        LatencyModel::calibrated()
    }
}

/// Builder for [`LatencyModel`], starting from the calibrated defaults.
///
/// Only the knobs that experiments actually sweep get dedicated methods; for
/// anything else, mutate the built model's public fields.
#[derive(Debug, Clone)]
pub struct LatencyModelBuilder {
    model: LatencyModel,
}

impl LatencyModelBuilder {
    /// Sets the CXL round-trip latency in nanoseconds (Fig. 9 sweeps
    /// 100–400 ns). Bulk-copy bandwidth over CXL scales inversely with the
    /// round trip, anchored at the calibrated 391 ns point.
    pub fn cxl_round_trip_ns(mut self, ns: u64) -> Self {
        assert!(ns > 0, "CXL round trip must be positive");
        let calibrated = LatencyModel::calibrated();
        let scale = calibrated.cxl_round_trip_ns as f64 / ns as f64;
        self.model.cxl_round_trip_ns = ns;
        self.model.cxl_copy_bytes_per_ns = calibrated.cxl_copy_bytes_per_ns * scale;
        self.model.cxl_write_bytes_per_ns = calibrated.cxl_write_bytes_per_ns * scale;
        self
    }

    /// Sets the local DRAM round-trip latency in nanoseconds.
    pub fn local_round_trip_ns(mut self, ns: u64) -> Self {
        self.model.local_round_trip_ns = ns;
        self
    }

    /// Sets the container-creation cost in milliseconds.
    pub fn container_create_ms(mut self, ms: u64) -> Self {
        self.model.container_create_ns = ms * 1_000_000;
        self
    }

    /// Finalizes the model.
    pub fn build(self) -> LatencyModel {
        self.model
    }
}

/// Costs a batched transfer as `p` overlapped per-shard streams.
///
/// The device pool is banked into shards, each with an independent port;
/// a transfer split across `p` streams finishes on the **critical path**
/// — the `max` over per-stream stage chains (gather → fingerprint/intern
/// → write on the checkpoint side, request → read on the restore side)
/// — instead of the serial sum charged by
/// [`LatencyModel::cxl_batch_write`] / [`LatencyModel::cxl_batch_read`].
///
/// The model is analytic rather than a per-assignment schedule: with
/// `active = min(p, populated shards)` streams, the bottleneck stream
/// carries at least `ceil(total / active)` pages (bandwidth floor) and at
/// least the largest single shard's count (a shard is one bank — its
/// pages cannot be split across streams). Costing that lower-bound
/// makespan keeps the cost **monotonically non-increasing in `p`**,
/// which a concrete round-robin shard→stream assignment does not
/// guarantee (e.g. shard counts `[9, 1, 1, 9]` round-robin to a
/// 10-page stream at `p = 2` but an 18-page stream at `p = 3`).
///
/// Every result is clamped from above by the serial cost, so a pipeline
/// can never lose to the single-stream model it replaces, and
/// `parallelism <= 1` short-circuits to the serial methods exactly —
/// the default configuration stays bit-identical to the pre-pipeline
/// simulation.
#[derive(Debug, Clone, Copy)]
pub struct PipelineModel<'m> {
    /// The underlying serial cost model.
    model: &'m LatencyModel,
    /// Number of concurrent shard streams the transfer may use.
    parallelism: u32,
    /// Fabric queueing delay added on top of every non-empty batch;
    /// [`SimDuration::ZERO`] (the default) leaves the model untouched.
    queue_delay: SimDuration,
}

impl<'m> PipelineModel<'m> {
    /// The configured stream count.
    pub fn parallelism(&self) -> u32 {
        self.parallelism
    }

    /// Returns the same model with a fabric queueing delay attached.
    ///
    /// The delay — typically produced by a `QueueingCurve` fed with the
    /// fabric's in-flight bytes — is added to every non-empty
    /// [`PipelineModel::batch_write`] / [`PipelineModel::batch_read`]
    /// *after* the serial clamp: contention slows pipelined and serial
    /// transfers alike, so it cannot resurrect a pipeline win the clamp
    /// already took away. `with_queue_delay(SimDuration::ZERO)` is
    /// bit-identical to not calling it.
    #[must_use]
    pub fn with_queue_delay(mut self, delay: SimDuration) -> Self {
        self.queue_delay = delay;
        self
    }

    /// The currently attached fabric queueing delay.
    pub fn queue_delay(&self) -> SimDuration {
        self.queue_delay
    }

    /// How many streams actually run for a batch with the given
    /// per-shard page counts: one per populated shard, capped at the
    /// configured parallelism, and never zero (a degenerate batch still
    /// nominally owns one stream).
    pub fn active_streams(&self, shard_counts: &[u64]) -> u64 {
        let populated = shard_counts.iter().filter(|&&n| n > 0).count() as u64;
        u64::from(self.parallelism).min(populated).max(1)
    }

    /// Pages carried by the modelled bottleneck stream: the larger of
    /// the balanced share `ceil(total / active)` and the largest single
    /// shard (one shard's pages ride one stream).
    pub fn stream_pages(&self, shard_counts: &[u64]) -> u64 {
        let total: u64 = shard_counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let active = self.active_streams(shard_counts);
        let max_shard = shard_counts.iter().copied().max().unwrap_or(0);
        total.div_ceil(active).max(max_shard)
    }

    /// A deterministic longest-processing-time assignment of shards to
    /// streams, for telemetry: each populated shard goes to the
    /// currently lightest stream (ties to the lowest stream index),
    /// heaviest shards first. Returns one load per active stream; the
    /// loads sum to the batch total. Used to label per-stream spans —
    /// the *cost* uses [`PipelineModel::stream_pages`].
    pub fn stream_loads(&self, shard_counts: &[u64]) -> Vec<u64> {
        let active = self.active_streams(shard_counts) as usize;
        let mut loads = vec![0u64; active];
        let mut shards: Vec<u64> = shard_counts.iter().copied().filter(|&n| n > 0).collect();
        shards.sort_unstable_by(|a, b| b.cmp(a));
        for n in shards {
            let lightest = (0..active).min_by_key(|&i| (loads[i], i)).unwrap_or(0);
            loads[lightest] += n;
        }
        loads
    }

    /// Critical-path cost of one checkpoint-side stream carrying
    /// `pages`: a startup round trip to claim the shard port, pipeline
    /// fill of the first page through the gather (local copy) and —
    /// when interning into the content-addressed store — fingerprint
    /// stages, then the write stage streaming every page. The write
    /// stage is the slowest per page, so steady state runs at streaming
    /// write bandwidth and the earlier stages surface only as fill.
    pub fn stream_write_cost(&self, pages: u64, fingerprint: bool) -> SimDuration {
        if pages == 0 {
            return SimDuration::ZERO;
        }
        let mut fill = self.model.cxl_read_round_trip() + self.model.local_copy(PAGE_SIZE);
        if fingerprint {
            fill += self.model.fingerprint_page();
        }
        fill + self.model.cxl_batch_write(pages)
    }

    /// Critical-path cost of one restore-side stream reading `pages`:
    /// exactly the serial batched read, whose first-page scalar cost
    /// already includes the stream's startup round trip.
    pub fn stream_read_cost(&self, pages: u64) -> SimDuration {
        self.model.cxl_batch_read(pages)
    }

    /// Cost of writing a batch whose pages land on shards with the
    /// given per-shard counts, split across up to `parallelism`
    /// streams. `fingerprint` charges the intern path's content-hash
    /// stage. Zero pages cost zero; `parallelism <= 1` is the serial
    /// model exactly; otherwise the bottleneck stream's critical path,
    /// never exceeding the serial cost.
    pub fn batch_write(&self, shard_counts: &[u64], fingerprint: bool) -> SimDuration {
        let total: u64 = shard_counts.iter().sum();
        if total == 0 {
            return SimDuration::ZERO;
        }
        let serial = self.model.cxl_batch_write(total);
        if self.parallelism <= 1 {
            return serial + self.queue_delay;
        }
        serial.min(self.stream_write_cost(self.stream_pages(shard_counts), fingerprint))
            + self.queue_delay
    }

    /// Cost of reading a batch whose pages land on shards with the
    /// given per-shard counts, split across up to `parallelism`
    /// streams. Zero pages cost zero; `parallelism <= 1` is the serial
    /// model exactly; otherwise the bottleneck stream's critical path,
    /// never exceeding the serial cost.
    pub fn batch_read(&self, shard_counts: &[u64]) -> SimDuration {
        let total: u64 = shard_counts.iter().sum();
        if total == 0 {
            return SimDuration::ZERO;
        }
        let serial = self.model.cxl_batch_read(total);
        if self.parallelism <= 1 {
            return serial + self.queue_delay;
        }
        serial.min(self.stream_read_cost(self.stream_pages(shard_counts))) + self.queue_delay
    }
}

/// Maximum utilization the queueing denominator may see; past this the
/// convex `1 / (1 - u)` term is frozen so delays stay finite while the
/// linear service term keeps the curve strictly increasing.
const MAX_QUEUE_UTILIZATION: f64 = 0.95;

/// Deterministic queueing-delay curve for one fabric port or switch
/// link.
///
/// The curve maps in-flight bytes (bytes recorded against the link
/// inside the current sliding virtual-time window) to extra transfer
/// latency:
///
/// ```text
/// delay(b) = (b / bytes_per_ns) / (1 - min(b / capacity, 0.95))
/// capacity = bytes_per_ns * window_ns
/// ```
///
/// The first factor is the time the in-flight backlog needs to drain at
/// link bandwidth; the second is the standard M/M/1-style convex
/// blow-up as the window saturates, clamped at 95% utilization so the
/// delay stays finite. Two properties the fabric relies on, both
/// property-tested:
///
/// * `delay(0) == 0` **exactly** — an uncontended fabric reduces to the
///   flat calibrated round-trip model bit-for-bit;
/// * `delay` is strictly monotone in `b` — more in-flight bytes never
///   make a transfer faster (past the clamp the linear drain term still
///   grows).
///
/// All arithmetic is straight-line `f64` on explicit inputs (no
/// wall-clock, no RNG), so same-seed runs are bit-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueingCurve {
    /// Link drain bandwidth in bytes per virtual nanosecond.
    bytes_per_ns: f64,
    /// Width of the sliding accounting window in virtual nanoseconds.
    window_ns: u64,
}

impl QueueingCurve {
    /// Builds a curve for a link draining `bytes_per_ns` over a
    /// `window_ns`-wide accounting window.
    ///
    /// # Panics
    /// If `bytes_per_ns` is not strictly positive and finite, or
    /// `window_ns` is zero.
    pub fn new(bytes_per_ns: f64, window_ns: u64) -> Self {
        assert!(
            bytes_per_ns.is_finite() && bytes_per_ns > 0.0,
            "queueing curve needs positive finite bandwidth, got {bytes_per_ns}"
        );
        assert!(window_ns > 0, "queueing curve needs a non-empty window");
        QueueingCurve {
            bytes_per_ns,
            window_ns,
        }
    }

    /// The window capacity: bytes the link drains in one full window.
    pub fn capacity_bytes(&self) -> u64 {
        let cap = self.bytes_per_ns * self.window_ns as f64;
        if cap >= u64::MAX as f64 {
            u64::MAX
        } else {
            cap as u64
        }
    }

    /// Queueing delay seen by a transfer that finds `inflight_bytes`
    /// already recorded against the link in the current window. Zero
    /// in-flight bytes cost exactly zero.
    pub fn delay(&self, inflight_bytes: u64) -> SimDuration {
        if inflight_bytes == 0 {
            return SimDuration::ZERO;
        }
        let capacity = self.bytes_per_ns * self.window_ns as f64;
        let service_ns = inflight_bytes as f64 / self.bytes_per_ns;
        let utilization = (inflight_bytes as f64 / capacity).min(MAX_QUEUE_UTILIZATION);
        SimDuration::from_secs_f64(service_ns / (1.0 - utilization) / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_matches_paper_headline_numbers() {
        let m = LatencyModel::calibrated();
        // §6.1: 391 ns CXL round trip.
        assert_eq!(m.cxl_read_round_trip().as_nanos(), 391);
        // §4.2.1: CXL CoW fault ≈2.5 µs with ≈1.3 µs data movement and
        // ≈500 ns TLB shootdown.
        let cow = m.cxl_cow_fault().as_nanos();
        assert!((2_200..=2_800).contains(&cow), "CXL CoW fault {cow} ns");
        let data = m.cxl_copy(PAGE_SIZE).as_nanos();
        assert!((1_150..=1_450).contains(&data), "CXL page copy {data} ns");
        // §4.2.1: regular local anonymous fault < 1 µs.
        assert!(m.local_anon_fault().as_nanos() < 1_000);
        // §5: container creation ≈130 ms.
        assert_eq!(m.container_create().as_millis(), 130);
    }

    #[test]
    fn criu_deserialize_rate_matches_bert_restore() {
        // BERT is 630 MB and CRIU restore takes ≈423 ms (Fig. 7a); our
        // per-byte deserialize + local copy should land in the same decade.
        let m = LatencyModel::calibrated();
        let bytes = 630u64 * 1024 * 1024;
        let t = m.deserialize(bytes) + m.local_copy(bytes);
        let ms = t.as_millis();
        assert!((250..=500).contains(&ms), "BERT CRIU restore model {ms} ms");
    }

    #[test]
    fn builder_scales_cxl_copy_bandwidth_with_latency() {
        let fast = LatencyModel::builder().cxl_round_trip_ns(100).build();
        let slow = LatencyModel::builder().cxl_round_trip_ns(400).build();
        assert!(fast.cxl_copy(PAGE_SIZE) < slow.cxl_copy(PAGE_SIZE));
        assert_eq!(fast.cxl_read_round_trip().as_nanos(), 100);
        // At 100 ns the device behaves nearly like local DRAM.
        let local = LatencyModel::calibrated().local_copy(PAGE_SIZE);
        assert!(fast.cxl_copy(PAGE_SIZE) < local * 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn builder_rejects_zero_latency() {
        let _ = LatencyModel::builder().cxl_round_trip_ns(0);
    }

    #[test]
    fn batch_of_one_costs_exactly_the_scalar_path() {
        // The batched-transfer contract: a batch of one page must be
        // virtual-time-identical to the pre-batch scalar cost, across the
        // whole Fig. 9 sweep range.
        for rt in [100u64, 200, 391, 400] {
            let m = LatencyModel::builder().cxl_round_trip_ns(rt).build();
            assert_eq!(m.cxl_batch_read(1), m.cxl_copy(PAGE_SIZE), "rt={rt}");
            assert_eq!(m.cxl_batch_write(1), m.cxl_write_copy(PAGE_SIZE), "rt={rt}");
            assert_eq!(m.prefetch_pages(1), m.prefetch_page(), "rt={rt}");
        }
    }

    #[test]
    fn batched_transfers_pipeline_strictly_cheaper() {
        let m = LatencyModel::calibrated();
        for n in [2u64, 8, 64, 1024] {
            assert!(
                m.cxl_batch_read(n) < m.cxl_copy(PAGE_SIZE) * n,
                "batch read of {n} not cheaper than {n} scalar reads"
            );
            // Writes are bandwidth-bound either way: the non-temporal
            // stream never paid a per-page round trip, so a batch costs
            // exactly n scalar writes — never less.
            assert_eq!(m.cxl_batch_write(n), m.cxl_write_copy(PAGE_SIZE) * n);
            // Still monotone: more pages never cost less.
            assert!(m.cxl_batch_read(n) > m.cxl_batch_read(n - 1));
        }
        assert_eq!(m.cxl_batch_read(0), SimDuration::ZERO);
        assert_eq!(m.cxl_batch_write(0), SimDuration::ZERO);
        // Exact shape: scalar + (n-1) * (scalar - round trip).
        let scalar = m.cxl_copy(PAGE_SIZE);
        let pipelined = scalar - m.cxl_read_round_trip();
        assert_eq!(m.cxl_batch_read(5), scalar + pipelined * 4);
    }

    #[test]
    fn file_readahead_charges_media_read_only() {
        let m = LatencyModel::calibrated();
        assert_eq!(m.file_readahead(0), SimDuration::ZERO);
        assert_eq!(
            m.file_readahead(3),
            SimDuration::from_nanos(m.file_read_page_ns) * 3
        );
        // An extra read-ahead page is cheaper than a full major fault.
        assert!(m.file_readahead(1) < m.file_major_fault());
    }

    /// Shard-count partitions exercised by the pipeline property tests:
    /// balanced, skewed, single-shard, adversarial (the round-robin
    /// counterexample), sparse, and tiny.
    const PARTITIONS: [&[u64]; 8] = [
        &[64, 64, 64, 64, 64, 64, 64, 64],
        &[1000, 1, 1, 1],
        &[1000],
        &[9, 1, 1, 9],
        &[0, 0, 512, 0, 0, 512, 0, 0],
        &[1],
        &[3, 7],
        &[17, 0, 17, 0, 17, 0, 17, 0, 17, 0, 17, 0, 17, 0, 17, 0],
    ];

    #[test]
    fn pipeline_p1_is_bit_identical_to_serial() {
        // The knob's default must not move a single nanosecond, across
        // the whole Fig. 9 sweep and for p = 0 (treated as serial).
        for rt in [100u64, 200, 391, 400] {
            let m = LatencyModel::builder().cxl_round_trip_ns(rt).build();
            for counts in PARTITIONS {
                let total: u64 = counts.iter().sum();
                for p in [0u32, 1] {
                    let pl = m.pipeline(p);
                    for fp in [false, true] {
                        assert_eq!(pl.batch_write(counts, fp), m.cxl_batch_write(total));
                    }
                    assert_eq!(pl.batch_read(counts), m.cxl_batch_read(total));
                }
            }
        }
    }

    #[test]
    fn pipeline_cost_is_monotone_non_increasing_in_p() {
        let m = LatencyModel::calibrated();
        for counts in PARTITIONS {
            for fp in [false, true] {
                let mut prev_w = SimDuration::MAX;
                let mut prev_r = SimDuration::MAX;
                for p in 1..=32u32 {
                    let pl = m.pipeline(p);
                    let w = pl.batch_write(counts, fp);
                    let r = pl.batch_read(counts);
                    assert!(w <= prev_w, "write cost rose at p={p} for {counts:?}");
                    assert!(r <= prev_r, "read cost rose at p={p} for {counts:?}");
                    prev_w = w;
                    prev_r = r;
                }
            }
        }
    }

    #[test]
    fn pipeline_never_beats_streaming_bandwidth_floor() {
        // The PR 4 invariant that keeps the Mitosis < CXLfork checkpoint
        // ordering honest: the critical path can never outrun the
        // fabric's streaming bandwidth on the pages one stream must
        // carry — at least ceil(total / p) of them, and at least the
        // largest single shard (a shard is one bank).
        let m = LatencyModel::calibrated();
        for counts in PARTITIONS {
            let total: u64 = counts.iter().sum();
            let max_shard = counts.iter().copied().max().unwrap();
            for p in 1..=32u32 {
                let pl = m.pipeline(p);
                let floor_share = m.cxl_batch_write(total.div_ceil(u64::from(p)));
                let floor_shard = m.cxl_batch_write(max_shard);
                let w = pl.batch_write(counts, true);
                assert!(w >= floor_share, "p={p} {counts:?} beats balanced share");
                assert!(w >= floor_shard, "p={p} {counts:?} splits a shard bank");
                // And never worse than the serial model it replaces.
                assert!(w <= m.cxl_batch_write(total));
                assert!(pl.batch_read(counts) <= m.cxl_batch_read(total));
            }
        }
    }

    #[test]
    fn pipeline_batch_of_zero_is_free_and_batch_of_one_is_scalar() {
        let m = LatencyModel::calibrated();
        for p in [1u32, 2, 4, 8, 16] {
            let pl = m.pipeline(p);
            for counts in [&[][..], &[0, 0, 0][..]] {
                assert_eq!(pl.batch_write(counts, true), SimDuration::ZERO);
                assert_eq!(pl.batch_read(counts), SimDuration::ZERO);
            }
            // One page cannot pipeline: extra streams only add startup
            // cost, so the serial clamp keeps batch-of-1 ≡ scalar.
            assert_eq!(
                pl.batch_write(&[0, 1, 0], false),
                m.cxl_write_copy(PAGE_SIZE)
            );
            assert_eq!(pl.batch_read(&[0, 1, 0]), m.cxl_copy(PAGE_SIZE));
        }
    }

    #[test]
    fn pipeline_stream_accounting_is_consistent() {
        let m = LatencyModel::calibrated();
        for counts in PARTITIONS {
            let total: u64 = counts.iter().sum();
            let populated = counts.iter().filter(|&&n| n > 0).count() as u64;
            for p in 1..=20u32 {
                let pl = m.pipeline(p);
                let active = pl.active_streams(counts);
                assert_eq!(active, u64::from(p).min(populated).max(1));
                let loads = pl.stream_loads(counts);
                assert_eq!(loads.len() as u64, active);
                assert_eq!(loads.iter().sum::<u64>(), total);
                // The modelled bottleneck is an optimistic makespan
                // bound: no concrete assignment — including the greedy
                // one the telemetry reports — can load its heaviest
                // stream below it.
                assert!(loads.iter().copied().max().unwrap() >= pl.stream_pages(counts));
            }
        }
    }

    #[test]
    fn pipeline_fingerprint_stage_is_fill_only() {
        // Fingerprinting is cheaper per page than the write stage, so it
        // must surface as pipeline fill (one page's hash), not as a
        // per-page charge on the critical path.
        let m = LatencyModel::calibrated();
        assert!(m.fingerprint_page() < m.cxl_write_copy(PAGE_SIZE));
        assert!(m.fingerprint_page() < m.local_copy(PAGE_SIZE));
        let pl = m.pipeline(8);
        let counts = [64u64; 8];
        let plain = pl.batch_write(&counts, false);
        let interned = pl.batch_write(&counts, true);
        assert!(interned >= plain);
        assert!(interned - plain <= m.fingerprint_page());
        // Sweeping the fabric latency must leave the local hash alone.
        let fast = LatencyModel::builder().cxl_round_trip_ns(100).build();
        assert_eq!(fast.fingerprint_page(), m.fingerprint_page());
    }

    #[test]
    fn pipeline_speedup_shows_up_at_scale() {
        // The headline the ablation bench reproduces: a large balanced
        // batch over 8 shards gets close to 8x cheaper at p = 8, and
        // extra streams beyond the populated shard count change nothing.
        let m = LatencyModel::calibrated();
        let counts = [4096u64; 8];
        let total: u64 = counts.iter().sum();
        let serial = m.cxl_batch_write(total);
        let p8 = m.pipeline(8).batch_write(&counts, false);
        assert!(p8 * 7 < serial, "p=8 speedup below 7x on a balanced batch");
        assert!(p8 * 9 > serial, "p=8 speedup above 9x is impossible");
        assert_eq!(p8, m.pipeline(16).batch_write(&counts, false));
    }

    #[test]
    fn fault_ordering_is_sane() {
        let m = LatencyModel::calibrated();
        assert!(m.minor_fault() < m.local_anon_fault());
        assert!(m.local_anon_fault() < m.cxl_cow_fault());
        assert!(m.local_cow_fault() < m.cxl_cow_fault());
        assert!(m.cxl_pull_fault() < m.cxl_cow_fault());
        assert!(m.cache_hit() < m.local_read_round_trip());
        assert!(m.local_read_round_trip() < m.cxl_read_round_trip());
    }

    #[test]
    fn queueing_zero_load_is_exactly_zero() {
        // The calibration contract: an uncontended fabric adds nothing,
        // so the flat 391 ns model survives bit-for-bit.
        let m = LatencyModel::calibrated();
        let curve = m.port_queueing_curve(1_000_000);
        assert_eq!(curve.delay(0), SimDuration::ZERO);
        // And threading a zero delay through the pipeline is identity.
        for counts in PARTITIONS {
            for p in [1, 2, 8, 16] {
                let plain = m.pipeline(p);
                let zeroed = plain.with_queue_delay(SimDuration::ZERO);
                assert_eq!(
                    plain.batch_write(counts, true),
                    zeroed.batch_write(counts, true)
                );
                assert_eq!(plain.batch_read(counts), zeroed.batch_read(counts));
            }
        }
    }

    #[test]
    fn queueing_delay_is_strictly_monotone_in_inflight_bytes() {
        let m = LatencyModel::calibrated();
        let curve = m.port_queueing_curve(1_000_000);
        let capacity = curve.capacity_bytes();
        // Sweep from far below to far beyond the utilization clamp:
        // delay never decreases at any step (ties are allowed below the
        // 1 ns resolution of `SimDuration`) ...
        let mut prev = curve.delay(0);
        let mut b = 1u64;
        while b < capacity * 4 {
            let d = curve.delay(b);
            assert!(
                d >= prev,
                "delay({b}) = {d:?} below delay at previous point {prev:?}"
            );
            prev = d;
            b = b * 3 + 1;
        }
        // ... and strictly increases across resolution-sized steps,
        // including past the utilization clamp where only the linear
        // drain term grows.
        let coarse = [
            capacity / 100,
            capacity / 10,
            capacity / 2,
            capacity,
            capacity * 2,
            capacity * 8,
        ];
        for pair in coarse.windows(2) {
            assert!(
                curve.delay(pair[1]) > curve.delay(pair[0]),
                "delay not strictly increasing from {} to {} bytes",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn queueing_delay_is_finite_at_and_past_saturation() {
        let curve = QueueingCurve::new(8.0, 1_000_000);
        let capacity = curve.capacity_bytes();
        for b in [capacity, capacity * 2, capacity * 100] {
            let d = curve.delay(b);
            assert!(d > SimDuration::ZERO && d < SimDuration::MAX);
        }
        // At the clamp the convex factor is 1/(1-0.95) = 20x the drain.
        let drain_ns = capacity as f64 / 8.0;
        let at_cap = curve.delay(capacity).as_nanos() as f64;
        assert!((at_cap - drain_ns * 20.0).abs() < drain_ns * 0.01);
    }

    #[test]
    fn queueing_pipeline_delay_is_additive_after_the_serial_clamp() {
        let m = LatencyModel::calibrated();
        let delay = SimDuration::from_nanos(12_345);
        for counts in PARTITIONS {
            for p in [1, 2, 8] {
                let plain = m.pipeline(p);
                let delayed = plain.with_queue_delay(delay);
                let total: u64 = counts.iter().sum();
                for (base, with) in [
                    (
                        plain.batch_write(counts, false),
                        delayed.batch_write(counts, false),
                    ),
                    (plain.batch_read(counts), delayed.batch_read(counts)),
                ] {
                    if total == 0 {
                        // Empty batches stay free even under contention.
                        assert_eq!(with, SimDuration::ZERO);
                    } else {
                        assert_eq!(with, base + delay);
                    }
                }
            }
        }
    }
}
