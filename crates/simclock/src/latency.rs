//! The calibrated latency model.
//!
//! Every modelled cost in the simulation is derived from the constants in
//! [`LatencyModel`]. The defaults come from the measurements reported in the
//! CXLfork paper for its Sapphire Rapids + Agilex-7 testbed (§4.2.1, §5, §6):
//!
//! * CXL round-trip latency: **391 ns** (Intel MLC measurement, §6.1).
//! * Local DRAM round trip: **~100 ns** (the paper's Fig. 9 calls 200 ns
//!   "2x the latency of local memory").
//! * CXL copy-on-write fault: **≈2.5 µs**, of which **≈1.3 µs** is data
//!   movement and **≈500 ns** TLB-coherence maintenance (§4.2.1).
//! * Regular local anonymous fault: **<1 µs** (§4.2.1).
//! * Container creation: **≈130 ms**; bare container footprint 512 KiB (§5).

use serde::{Deserialize, Serialize};

use crate::SimDuration;

/// Size of a small (base) page in bytes, shared by the whole simulation.
pub const PAGE_SIZE: u64 = 4096;

/// Calibrated cost constants for the simulation.
///
/// The struct is plain configuration data: fields are public and may be
/// adjusted directly or through [`LatencyModelBuilder`]. Use
/// [`LatencyModel::calibrated`] for the paper-faithful defaults.
///
/// # Example
///
/// ```
/// use simclock::LatencyModel;
///
/// let model = LatencyModel::calibrated();
/// assert_eq!(model.cxl_read_round_trip().as_nanos(), 391);
/// // Fig. 9 sweeps the CXL latency directly:
/// let fast = LatencyModel::builder().cxl_round_trip_ns(100).build();
/// assert!(fast.cxl_cow_fault() < model.cxl_cow_fault());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Round-trip latency of one cache-line access to CXL-attached memory.
    pub cxl_round_trip_ns: u64,
    /// Round-trip latency of one cache-line access to node-local DRAM.
    pub local_round_trip_ns: u64,
    /// Latency of an LLC hit, charged per modelled access burst.
    pub cache_hit_ns: u64,

    /// Effective bandwidth copying bulk data between local DRAM buffers
    /// (bytes per nanosecond ≙ GB/s).
    pub local_copy_bytes_per_ns: f64,
    /// Effective bandwidth copying bulk data to/from the CXL device with
    /// non-temporal stores (§8 "Hardware Requirements").
    pub cxl_copy_bytes_per_ns: f64,
    /// Effective bandwidth of bulk *writes* to the CXL device using
    /// non-temporal (write-combining) stores, which avoid the
    /// read-for-ownership round trip and stream faster than reads (§8).
    /// This is the checkpoint-copy path.
    pub cxl_write_bytes_per_ns: f64,

    /// Fixed kernel-entry + handler overhead of any page fault.
    pub fault_base_ns: u64,
    /// Cost of zero-filling a fresh anonymous page (on top of the base).
    pub anon_zero_fill_ns: u64,
    /// Cost of one TLB shootdown round (§4.2.1 measures ≈500 ns).
    pub tlb_shootdown_ns: u64,
    /// Cost of reading one page from the (shared) root filesystem on a major
    /// fault.
    pub file_read_page_ns: u64,

    /// Per-byte cost of serializing state into a CRIU-style image.
    pub serialize_ns_per_byte: f64,
    /// Per-byte cost of parsing a CRIU-style image back into live state.
    pub deserialize_ns_per_byte: f64,
    /// Fixed cost of opening/creating one image file on the shared fs.
    pub image_file_open_ns: u64,

    /// Per-PTE cost of Mitosis-style OS-state descriptor encoding.
    pub descriptor_encode_pte_ns: u64,
    /// Per-PTE cost of Mitosis-style OS-state descriptor decoding on the
    /// restore node.
    pub descriptor_decode_pte_ns: u64,

    /// Cost of duplicating one PTE during a local fork (copying parent page
    /// tables and applying CoW protection).
    pub fork_pte_copy_ns: u64,
    /// Cost of duplicating one VMA during a local fork.
    pub fork_vma_copy_ns: u64,
    /// Fixed skeleton cost of creating a task (local fork or restore stub).
    pub process_create_ns: u64,

    /// Cost of allocating + initializing one upper-level page-table page on
    /// restore.
    pub pt_upper_alloc_ns: u64,
    /// Cost of attaching one checkpointed page-table leaf (linking a CXL
    /// offset into the local upper levels, §4.2.1).
    pub pt_leaf_attach_ns: u64,
    /// Cost of attaching one checkpointed VMA-tree leaf block.
    pub vma_leaf_attach_ns: u64,
    /// Cost of re-opening one file descriptor / file mapping from its
    /// checkpointed path during global-state restore (§4.2).
    pub file_reopen_ns: u64,
    /// Cost of rebasing one internal pointer during checkpoint (§4.1 step 7).
    pub rebase_pointer_ns: u64,

    /// Cost of setting up a new container (network, namespaces, cgroups;
    /// §5 measures ≈130 ms).
    pub container_create_ns: u64,
    /// Cost of signalling a ghost container's control socket and having it
    /// issue the restore request.
    pub ghost_trigger_ns: u64,
}

impl LatencyModel {
    /// The paper-calibrated default model.
    pub fn calibrated() -> Self {
        LatencyModel {
            cxl_round_trip_ns: 391,
            local_round_trip_ns: 100,
            cache_hit_ns: 4,

            // ~12.8 GB/s local stream copy; CXL page copy of 4 KiB in
            // ≈1.3 µs (§4.2.1) → ≈3.15 bytes/ns. Non-temporal streaming
            // writes run faster (~8 GB/s), which is why Mitosis (local
            // checkpoint) checkpoints only ≈1.5× faster than CXLfork
            // (CXL checkpoint) despite the latency gap (§7.1).
            local_copy_bytes_per_ns: 12.8,
            cxl_copy_bytes_per_ns: 3.15,
            cxl_write_bytes_per_ns: 8.0,

            fault_base_ns: 450,
            anon_zero_fill_ns: 400,
            tlb_shootdown_ns: 500,
            file_read_page_ns: 6_500,

            // CRIU restore of a 630 MB BERT instance takes ≈423 ms in the
            // paper; deserialization dominates.
            serialize_ns_per_byte: 1.55,
            deserialize_ns_per_byte: 0.42,
            image_file_open_ns: 25_000,

            // Mitosis restore of BERT (≈161k PTEs) takes ≈15 ms.
            descriptor_encode_pte_ns: 35,
            descriptor_decode_pte_ns: 60,

            fork_pte_copy_ns: 9,
            fork_vma_copy_ns: 950,
            process_create_ns: 250_000,

            pt_upper_alloc_ns: 900,
            pt_leaf_attach_ns: 140,
            vma_leaf_attach_ns: 220,
            file_reopen_ns: 16_000,
            rebase_pointer_ns: 6,

            container_create_ns: 130_000_000,
            ghost_trigger_ns: 450_000,
        }
    }

    /// Starts building a model from the calibrated defaults.
    pub fn builder() -> LatencyModelBuilder {
        LatencyModelBuilder {
            model: LatencyModel::calibrated(),
        }
    }

    /// One cache-line round trip to the CXL device.
    #[inline]
    pub fn cxl_read_round_trip(&self) -> SimDuration {
        SimDuration::from_nanos(self.cxl_round_trip_ns)
    }

    /// One cache-line round trip to local DRAM.
    #[inline]
    pub fn local_read_round_trip(&self) -> SimDuration {
        SimDuration::from_nanos(self.local_round_trip_ns)
    }

    /// An LLC hit.
    #[inline]
    pub fn cache_hit(&self) -> SimDuration {
        SimDuration::from_nanos(self.cache_hit_ns)
    }

    /// Copying `bytes` between local DRAM buffers.
    pub fn local_copy(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.local_copy_bytes_per_ns / 1e9)
    }

    /// Copying `bytes` to or from the CXL device.
    pub fn cxl_copy(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.cxl_copy_bytes_per_ns / 1e9)
    }

    /// Streaming `bytes` *to* the CXL device with non-temporal stores
    /// (checkpoint copies, §8).
    pub fn cxl_write_copy(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.cxl_write_bytes_per_ns / 1e9)
    }

    /// A regular local anonymous (zero-fill) fault: base + fill; the paper
    /// reports "<1 µs".
    pub fn local_anon_fault(&self) -> SimDuration {
        SimDuration::from_nanos(self.fault_base_ns + self.anon_zero_fill_ns)
    }

    /// A local copy-on-write fault: base + local page copy + TLB shootdown.
    pub fn local_cow_fault(&self) -> SimDuration {
        SimDuration::from_nanos(self.fault_base_ns + self.tlb_shootdown_ns)
            + self.local_copy(PAGE_SIZE)
    }

    /// A CXL copy-on-write fault: base + page copy over CXL + TLB shootdown.
    /// Calibrated to ≈2.5 µs (§4.2.1).
    pub fn cxl_cow_fault(&self) -> SimDuration {
        SimDuration::from_nanos(self.fault_base_ns + self.tlb_shootdown_ns)
            + self.cxl_copy(PAGE_SIZE)
    }

    /// A migrate-on-access CXL fault (same data path as a CXL CoW fault, but
    /// no pre-existing mapping to shoot down).
    pub fn cxl_pull_fault(&self) -> SimDuration {
        SimDuration::from_nanos(self.fault_base_ns) + self.cxl_copy(PAGE_SIZE)
    }

    /// A major fault reading one page from the shared root filesystem.
    pub fn file_major_fault(&self) -> SimDuration {
        SimDuration::from_nanos(self.fault_base_ns + self.file_read_page_ns)
    }

    /// A minor fault mapping an already-resident page.
    pub fn minor_fault(&self) -> SimDuration {
        SimDuration::from_nanos(self.fault_base_ns + 150)
    }

    /// Prefetching one dirty page into local memory during restore (bulk
    /// path: no trap, no per-page shootdown — the mapping is not yet live).
    pub fn prefetch_page(&self) -> SimDuration {
        self.cxl_copy(PAGE_SIZE)
    }

    /// Reading `pages` whole pages from the device as **one batched,
    /// pipelined transfer**: the first page pays the full scalar cost
    /// ([`LatencyModel::cxl_copy`] of one page, which includes the
    /// request round trip), and every further page is pipelined behind
    /// it, paying only the transfer portion (scalar cost minus one
    /// round trip). Batch-of-1 therefore costs *exactly* the scalar
    /// path, and an `n`-page batch is strictly cheaper than `n` scalar
    /// reads whenever the round trip is non-zero. Zero pages cost zero.
    ///
    /// Both terms derive from swept model fields, so the Fig. 9 latency
    /// sensitivity sweep (which scales round trip and bandwidth
    /// together) stays reproducible.
    pub fn cxl_batch_read(&self, pages: u64) -> SimDuration {
        if pages == 0 {
            return SimDuration::ZERO;
        }
        let scalar = self.cxl_copy(PAGE_SIZE);
        let pipelined = scalar.saturating_sub(self.cxl_read_round_trip());
        scalar + pipelined * (pages - 1)
    }

    /// Writing `pages` whole pages to the device as one batched
    /// non-temporal stream.
    ///
    /// Unlike [`LatencyModel::cxl_batch_read`] there is no round-trip
    /// discount to claim: the scalar write cost
    /// ([`LatencyModel::cxl_write_copy`] of one page) is *already* pure
    /// streaming bandwidth — non-temporal stores post without waiting
    /// for a per-page completion, which is why `cxl_write_bytes_per_ns`
    /// beats `cxl_copy_bytes_per_ns` in the first place. Subtracting a
    /// round trip here would double-count that pipelining and let a
    /// batch outrun the fabric's write bandwidth. An `n`-page batch
    /// therefore costs exactly `n` scalar writes (batch-of-1 ≡ scalar
    /// trivially); the batch API still wins on lock traffic and fault
    /// cadence, and the latency win lives on the read side.
    pub fn cxl_batch_write(&self, pages: u64) -> SimDuration {
        self.cxl_write_copy(PAGE_SIZE) * pages
    }

    /// Prefetching `pages` dirty pages during restore as one batched
    /// transfer (the batch form of [`LatencyModel::prefetch_page`]).
    pub fn prefetch_pages(&self, pages: u64) -> SimDuration {
        self.cxl_batch_read(pages)
    }

    /// Reading `extra` *additional* file pages piggybacked on a major
    /// fault (read-ahead fill): the trap and handler were already paid
    /// by the triggering fault, so each extra page costs only the media
    /// read.
    pub fn file_readahead(&self, extra: u64) -> SimDuration {
        SimDuration::from_nanos(self.file_read_page_ns) * extra
    }

    /// Creating a container from scratch (≈130 ms, §5).
    pub fn container_create(&self) -> SimDuration {
        SimDuration::from_nanos(self.container_create_ns)
    }

    /// Waking a ghost container to issue a restore.
    pub fn ghost_trigger(&self) -> SimDuration {
        SimDuration::from_nanos(self.ghost_trigger_ns)
    }

    /// Serializing `bytes` into an image.
    pub fn serialize(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * self.serialize_ns_per_byte / 1e9)
    }

    /// Deserializing `bytes` from an image.
    pub fn deserialize(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * self.deserialize_ns_per_byte / 1e9)
    }
}

impl Default for LatencyModel {
    /// Same as [`LatencyModel::calibrated`].
    fn default() -> Self {
        LatencyModel::calibrated()
    }
}

/// Builder for [`LatencyModel`], starting from the calibrated defaults.
///
/// Only the knobs that experiments actually sweep get dedicated methods; for
/// anything else, mutate the built model's public fields.
#[derive(Debug, Clone)]
pub struct LatencyModelBuilder {
    model: LatencyModel,
}

impl LatencyModelBuilder {
    /// Sets the CXL round-trip latency in nanoseconds (Fig. 9 sweeps
    /// 100–400 ns). Bulk-copy bandwidth over CXL scales inversely with the
    /// round trip, anchored at the calibrated 391 ns point.
    pub fn cxl_round_trip_ns(mut self, ns: u64) -> Self {
        assert!(ns > 0, "CXL round trip must be positive");
        let calibrated = LatencyModel::calibrated();
        let scale = calibrated.cxl_round_trip_ns as f64 / ns as f64;
        self.model.cxl_round_trip_ns = ns;
        self.model.cxl_copy_bytes_per_ns = calibrated.cxl_copy_bytes_per_ns * scale;
        self.model.cxl_write_bytes_per_ns = calibrated.cxl_write_bytes_per_ns * scale;
        self
    }

    /// Sets the local DRAM round-trip latency in nanoseconds.
    pub fn local_round_trip_ns(mut self, ns: u64) -> Self {
        self.model.local_round_trip_ns = ns;
        self
    }

    /// Sets the container-creation cost in milliseconds.
    pub fn container_create_ms(mut self, ms: u64) -> Self {
        self.model.container_create_ns = ms * 1_000_000;
        self
    }

    /// Finalizes the model.
    pub fn build(self) -> LatencyModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_matches_paper_headline_numbers() {
        let m = LatencyModel::calibrated();
        // §6.1: 391 ns CXL round trip.
        assert_eq!(m.cxl_read_round_trip().as_nanos(), 391);
        // §4.2.1: CXL CoW fault ≈2.5 µs with ≈1.3 µs data movement and
        // ≈500 ns TLB shootdown.
        let cow = m.cxl_cow_fault().as_nanos();
        assert!((2_200..=2_800).contains(&cow), "CXL CoW fault {cow} ns");
        let data = m.cxl_copy(PAGE_SIZE).as_nanos();
        assert!((1_150..=1_450).contains(&data), "CXL page copy {data} ns");
        // §4.2.1: regular local anonymous fault < 1 µs.
        assert!(m.local_anon_fault().as_nanos() < 1_000);
        // §5: container creation ≈130 ms.
        assert_eq!(m.container_create().as_millis(), 130);
    }

    #[test]
    fn criu_deserialize_rate_matches_bert_restore() {
        // BERT is 630 MB and CRIU restore takes ≈423 ms (Fig. 7a); our
        // per-byte deserialize + local copy should land in the same decade.
        let m = LatencyModel::calibrated();
        let bytes = 630u64 * 1024 * 1024;
        let t = m.deserialize(bytes) + m.local_copy(bytes);
        let ms = t.as_millis();
        assert!((250..=500).contains(&ms), "BERT CRIU restore model {ms} ms");
    }

    #[test]
    fn builder_scales_cxl_copy_bandwidth_with_latency() {
        let fast = LatencyModel::builder().cxl_round_trip_ns(100).build();
        let slow = LatencyModel::builder().cxl_round_trip_ns(400).build();
        assert!(fast.cxl_copy(PAGE_SIZE) < slow.cxl_copy(PAGE_SIZE));
        assert_eq!(fast.cxl_read_round_trip().as_nanos(), 100);
        // At 100 ns the device behaves nearly like local DRAM.
        let local = LatencyModel::calibrated().local_copy(PAGE_SIZE);
        assert!(fast.cxl_copy(PAGE_SIZE) < local * 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn builder_rejects_zero_latency() {
        let _ = LatencyModel::builder().cxl_round_trip_ns(0);
    }

    #[test]
    fn batch_of_one_costs_exactly_the_scalar_path() {
        // The batched-transfer contract: a batch of one page must be
        // virtual-time-identical to the pre-batch scalar cost, across the
        // whole Fig. 9 sweep range.
        for rt in [100u64, 200, 391, 400] {
            let m = LatencyModel::builder().cxl_round_trip_ns(rt).build();
            assert_eq!(m.cxl_batch_read(1), m.cxl_copy(PAGE_SIZE), "rt={rt}");
            assert_eq!(m.cxl_batch_write(1), m.cxl_write_copy(PAGE_SIZE), "rt={rt}");
            assert_eq!(m.prefetch_pages(1), m.prefetch_page(), "rt={rt}");
        }
    }

    #[test]
    fn batched_transfers_pipeline_strictly_cheaper() {
        let m = LatencyModel::calibrated();
        for n in [2u64, 8, 64, 1024] {
            assert!(
                m.cxl_batch_read(n) < m.cxl_copy(PAGE_SIZE) * n,
                "batch read of {n} not cheaper than {n} scalar reads"
            );
            // Writes are bandwidth-bound either way: the non-temporal
            // stream never paid a per-page round trip, so a batch costs
            // exactly n scalar writes — never less.
            assert_eq!(m.cxl_batch_write(n), m.cxl_write_copy(PAGE_SIZE) * n);
            // Still monotone: more pages never cost less.
            assert!(m.cxl_batch_read(n) > m.cxl_batch_read(n - 1));
        }
        assert_eq!(m.cxl_batch_read(0), SimDuration::ZERO);
        assert_eq!(m.cxl_batch_write(0), SimDuration::ZERO);
        // Exact shape: scalar + (n-1) * (scalar - round trip).
        let scalar = m.cxl_copy(PAGE_SIZE);
        let pipelined = scalar - m.cxl_read_round_trip();
        assert_eq!(m.cxl_batch_read(5), scalar + pipelined * 4);
    }

    #[test]
    fn file_readahead_charges_media_read_only() {
        let m = LatencyModel::calibrated();
        assert_eq!(m.file_readahead(0), SimDuration::ZERO);
        assert_eq!(
            m.file_readahead(3),
            SimDuration::from_nanos(m.file_read_page_ns) * 3
        );
        // An extra read-ahead page is cheaper than a full major fault.
        assert!(m.file_readahead(1) < m.file_major_fault());
    }

    #[test]
    fn fault_ordering_is_sane() {
        let m = LatencyModel::calibrated();
        assert!(m.minor_fault() < m.local_anon_fault());
        assert!(m.local_anon_fault() < m.cxl_cow_fault());
        assert!(m.local_cow_fault() < m.cxl_cow_fault());
        assert!(m.cxl_pull_fault() < m.cxl_cow_fault());
        assert!(m.cache_hit() < m.local_read_round_trip());
        assert!(m.local_read_round_trip() < m.cxl_read_round_trip());
    }
}
