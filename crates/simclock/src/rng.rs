//! Deterministic randomness helpers.
//!
//! All stochastic behaviour in the simulation (access-pattern sampling,
//! trace generation) flows through seeded [`rand::rngs::StdRng`] instances
//! created here, so that every experiment run is reproducible bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a 64-bit seed.
///
/// # Example
///
/// ```
/// use rand::Rng;
///
/// let mut a = simclock::rng::seeded(7);
/// let mut b = simclock::rng::seeded(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child RNG deterministically from a parent seed and a label.
///
/// Different subsystems seed their RNGs from `(experiment_seed, label)` so
/// that adding a new consumer of randomness does not perturb the streams of
/// existing ones.
pub fn derived(seed: u64, label: &str) -> StdRng {
    // FNV-1a over the label, mixed with the seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(seed ^ h)
}

/// Samples an exponentially distributed inter-arrival gap with the given
/// mean, in fractional seconds.
///
/// Used by the trace generator for Poisson arrivals. Always returns a
/// finite, non-negative value.
pub fn exp_sample<R: Rng>(rng: &mut R, mean_secs: f64) -> f64 {
    assert!(mean_secs > 0.0, "mean must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    (-u.ln()) * mean_secs
}

/// Samples a Zipf-like rank in `[0, n)` with skew parameter `s`.
///
/// Implemented by inverse-CDF over precomputed weights for small `n`; the
/// function caches nothing, so callers iterating heavily should precompute
/// a [`ZipfSampler`].
pub fn zipf_sample<R: Rng>(rng: &mut R, n: usize, s: f64) -> usize {
    ZipfSampler::new(n, s).sample(rng)
}

/// A reusable Zipf sampler over ranks `[0, n)`.
///
/// # Example
///
/// ```
/// use simclock::rng::{seeded, ZipfSampler};
///
/// let mut rng = seeded(1);
/// let z = ZipfSampler::new(10, 1.0);
/// let r = z.sample(&mut rng);
/// assert!(r < 10);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with skew `s` (`s = 0` is uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "skew must be finite and >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` only for the degenerate zero-rank sampler (unreachable via
    /// `new`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(99);
        let mut b = seeded(99);
        let va: Vec<u32> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn derived_streams_differ_by_label() {
        let mut a = derived(1, "alpha");
        let mut b = derived(1, "beta");
        let va: u64 = a.gen();
        let vb: u64 = b.gen();
        assert_ne!(va, vb);
        // Same label ⇒ same stream.
        let mut c = derived(1, "alpha");
        let vc: u64 = c.gen();
        assert_eq!(va, vc);
    }

    #[test]
    fn exp_sample_has_roughly_right_mean() {
        let mut rng = seeded(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exp_sample(&mut rng, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "mean must be positive")]
    fn exp_sample_rejects_nonpositive_mean() {
        let mut rng = seeded(0);
        let _ = exp_sample(&mut rng, 0.0);
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut rng = seeded(3);
        let z = ZipfSampler::new(100, 1.2);
        let mut low = 0;
        let trials = 10_000;
        for _ in 0..trials {
            if z.sample(&mut rng) < 10 {
                low += 1;
            }
        }
        // With s=1.2 the top-10 ranks should dominate.
        assert!(low > trials / 2, "low-rank hits: {low}/{trials}");
    }

    #[test]
    fn zipf_zero_skew_is_roughly_uniform() {
        let mut rng = seeded(4);
        let z = ZipfSampler::new(10, 0.0);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..=1300).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_empty_domain() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    fn zipf_samples_stay_in_range() {
        let mut rng = seeded(5);
        let z = ZipfSampler::new(3, 2.5);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }
}
