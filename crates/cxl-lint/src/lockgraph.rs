//! Static lock-class graph extraction — lockdep's edge graph, computed
//! from source instead of from a run.
//!
//! Runtime lockdep (`cxl_mem::lockdep`) records `(held, acquired)` lock
//! *class* edges as tests execute; `cxl-check` then looks for cycles.
//! That only covers paths a test actually drove. This module extracts
//! the same graph from the token stream, so orderings that no test
//! exercises still participate in cycle detection — and so the two
//! graphs can be cross-checked: a runtime edge whose reverse exists
//! statically is a discipline contradiction, and a static edge no
//! runtime test produced is a coverage gap worth a test.
//!
//! ## How extraction works (a lexer-level approximation)
//!
//! 1. **Class declarations.** `TrackedMutex::new("class.name", …)` and
//!    `TrackedRwLock::new(…)` bind the declared class to the binding
//!    name on the left (`regions: TrackedRwLock::new("cxl_mem.device.regions", …)`
//!    maps `regions` → that class). When the class argument is an
//!    indexed const array of string literals (the device's
//!    `SHARD_CLASSES[i]`), the binding maps to a *family*: the longest
//!    common prefix of the array elements plus `*`
//!    (`cxl_mem.device.shard*`). Name→class maps are per-file — lock
//!    fields are private, so acquisitions live in the declaring file.
//! 2. **Guard tracking.** Inside each `fn` body, `x.lock()`, `x.read()`,
//!    `x.write()` with a known receiver name is an acquisition. If the
//!    statement is `let g = x.lock();` the guard is held until its
//!    enclosing brace closes (or an explicit `drop(g)`); a chained use
//!    like `x.lock().len()` is a transient acquisition. Every
//!    acquisition records an edge from each currently held class.
//! 3. **Interprocedural propagation.** Each function's summary carries
//!    the classes it acquires and the calls it makes while holding
//!    guards. Summaries propagate callee→caller to a fixpoint, with
//!    callees resolved by bare name (common names like `get`/`len` are
//!    on a stoplist, and unresolved names contribute nothing) — so
//!    `store.intern_pages` holding the store lock still yields
//!    `cxl_store.inner → cxl_mem.device.shard*` edges.
//!
//! `#[cfg(test)]` regions are excluded: test-local lock classes
//! (`test.edge_a`, `negtest.…`) are scaffolding for the runtime lockdep
//! tests, not part of the system's discipline.

use std::collections::{BTreeMap, BTreeSet};

use crate::engine::SourceFile;
use crate::lexer::{TokKind, Token};

/// Method/function names never used to resolve calls interprocedurally:
/// too generic to identify one callee (std and every collection export
/// them), so a name match would fabricate edges.
const CALLEE_STOPLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "drop",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "set",
    "insert",
    "remove",
    "push",
    "pop",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "from",
    "into",
    "to_string",
    "to_owned",
    "to_vec",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "as_ref",
    "as_mut",
    "as_str",
    "as_bytes",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect",
    "map",
    "map_err",
    "and_then",
    "or_else",
    "ok_or",
    "ok_or_else",
    "ok",
    "err",
    "collect",
    "extend",
    "contains",
    "contains_key",
    "with_capacity",
    "read",
    "write",
    "lock",
    "index",
    "clear",
    "count",
    "sum",
    "min",
    "max",
    "abs",
    "retain",
    "entry",
    "or_default",
    "or_insert",
    "sort",
    "sort_by",
    "sort_by_key",
    "position",
    "rposition",
    "zip",
    "enumerate",
    "filter",
    "filter_map",
    "flat_map",
    "flatten",
    "rev",
    "take",
    "skip",
    "chain",
    "any",
    "all",
    "fold",
    "for_each",
    "join",
    "split",
    "trim",
    "parse",
    "matches",
    "starts_with",
    "ends_with",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "keys",
    "values",
    "values_mut",
    "drain",
    "first",
    "last",
    "swap",
    "replace",
    "split_once",
    "saturating_sub",
    "checked_sub",
    "wrapping_add",
    "min_by_key",
    "max_by_key",
    "copied",
    "cloned",
    "format",
    "assert",
    "debug_assert",
];

/// One static edge with its provenance.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Class held when the acquisition happened.
    pub held: String,
    /// Class acquired.
    pub acquired: String,
    /// File of the acquisition site.
    pub file: String,
    /// Line of the acquisition site.
    pub line: u32,
}

/// The extracted static lock-class graph.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// Deduplicated edges (first provenance wins).
    edges: Vec<Edge>,
}

/// Result of comparing the static graph against runtime lockdep edges.
pub struct RuntimeComparison {
    /// `(held, acquired, explanation)` — runtime edges the static
    /// discipline forbids.
    pub contradictions: Vec<(String, String, String)>,
    /// Static edges no runtime edge matched.
    pub coverage_gaps: Vec<(String, String)>,
}

impl LockGraph {
    /// Edge list for the report: `(held, acquired, file, line)`.
    pub fn edges_for_report(&self) -> Vec<(String, String, String, u32)> {
        self.edges
            .iter()
            .map(|e| (e.held.clone(), e.acquired.clone(), e.file.clone(), e.line))
            .collect()
    }

    /// Finds elementary cycles in the class graph (DFS over unique
    /// nodes). Self-edges on a family with a declared intra-family order
    /// are not cycles — `shard03 → shard05` under ascending discipline
    /// is legal even though both collapse to `cxl_mem.device.shard*`.
    pub fn cycles(&self, ordered_families: &[String]) -> Vec<Vec<String>> {
        let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for e in &self.edges {
            if e.held == e.acquired && is_ordered_family(&e.held, ordered_families) {
                continue;
            }
            adj.entry(&e.held).or_default().insert(&e.acquired);
        }
        // Iterative DFS with a recursion stack, reporting each cycle at
        // its lexicographically-least entry node once.
        let mut cycles: BTreeSet<Vec<String>> = BTreeSet::new();
        let nodes: Vec<&str> = adj.keys().copied().collect();
        for &start in &nodes {
            // Path-based DFS from each node; bounded by graph size.
            let mut stack = vec![(
                start,
                adj.get(start)
                    .into_iter()
                    .flatten()
                    .copied()
                    .collect::<Vec<_>>(),
            )];
            let mut path = vec![start];
            while let Some((_, succs)) = stack.last_mut() {
                if let Some(next) = succs.pop() {
                    if next == start {
                        // Found a cycle back to the root.
                        let mut cyc: Vec<String> = path.iter().map(ToString::to_string).collect();
                        // Canonicalize: rotate so the least node leads.
                        if let Some(minpos) = cyc
                            .iter()
                            .enumerate()
                            .min_by(|a, b| a.1.cmp(b.1))
                            .map(|(i, _)| i)
                        {
                            cyc.rotate_left(minpos);
                        }
                        cycles.insert(cyc);
                    } else if !path.contains(&next) {
                        path.push(next);
                        stack.push((next, adj.get(next).into_iter().flatten().copied().collect()));
                    }
                } else {
                    stack.pop();
                    path.pop();
                }
            }
        }
        cycles.into_iter().collect()
    }

    /// Cross-checks runtime lockdep edges against the static graph.
    ///
    /// * A runtime edge *within* an ordered family must respect the
    ///   family's ascending order (`shard03 → shard05` ok, `shard05 →
    ///   shard03` is a contradiction).
    /// * A runtime edge matching a static edge (exact class or family
    ///   wildcard) is *covered*.
    /// * A runtime edge whose **reverse** exists statically is a
    ///   contradiction — the code's textual discipline and the executed
    ///   order disagree.
    /// * Other runtime edges are paths the textual extractor cannot see
    ///   (dynamic dispatch, cross-crate private fields); they are fine.
    /// * Static edges matching no runtime edge come back as coverage
    ///   gaps: orderings no lockdep test exercised.
    pub fn compare_runtime(
        &self,
        runtime: &[(String, String)],
        ordered_families: &[String],
    ) -> RuntimeComparison {
        let mut contradictions = Vec::new();
        let mut covered: BTreeSet<(String, String)> = BTreeSet::new();
        for (h, a) in runtime {
            let fam_h = family_of(h, ordered_families);
            let fam_a = family_of(a, ordered_families);
            if let (Some(f1), Some(f2)) = (fam_h, fam_a) {
                if f1 == f2 {
                    if h >= a {
                        contradictions.push((
                            h.clone(),
                            a.clone(),
                            format!("violates the ascending order declared for family `{f1}`"),
                        ));
                    }
                    continue;
                }
            }
            let matches_static = |x: &str, y: &str| {
                self.edges
                    .iter()
                    .find(|e| class_matches(&e.held, x) && class_matches(&e.acquired, y))
                    .map(|e| (e.held.clone(), e.acquired.clone()))
            };
            if let Some(edge) = matches_static(h, a) {
                covered.insert(edge);
            } else if matches_static(a, h).is_some() {
                contradictions.push((
                    h.clone(),
                    a.clone(),
                    "opposes the statically extracted order (reverse edge exists in source)"
                        .to_string(),
                ));
            }
        }
        let mut coverage_gaps: Vec<(String, String)> = self
            .edges
            .iter()
            .map(|e| (e.held.clone(), e.acquired.clone()))
            .filter(|e| !covered.contains(e))
            .collect();
        coverage_gaps.sort();
        coverage_gaps.dedup();
        RuntimeComparison {
            contradictions,
            coverage_gaps,
        }
    }
}

/// `true` if `class` is (or belongs to) a declared ordered family.
fn is_ordered_family(class: &str, ordered_families: &[String]) -> bool {
    family_of(class, ordered_families).is_some() && class.ends_with('*')
}

/// The ordered family `class` belongs to, if any. Accepts both the
/// family node itself (`cxl_mem.device.shard*`) and concrete members
/// (`cxl_mem.device.shard07`).
fn family_of<'a>(class: &str, ordered_families: &'a [String]) -> Option<&'a str> {
    ordered_families.iter().map(String::as_str).find(|f| {
        let prefix = f.strip_suffix('*').unwrap_or(f);
        class.strip_suffix('*').unwrap_or(class).starts_with(prefix)
    })
}

/// `true` if static class node `node` (possibly a `…*` family) covers
/// runtime class `class`.
fn class_matches(node: &str, class: &str) -> bool {
    match node.strip_suffix('*') {
        Some(prefix) => class.starts_with(prefix),
        None => node == class,
    }
}

// ---------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------

/// Per-function summary used for interprocedural propagation.
#[derive(Debug, Default, Clone)]
struct FnSummary {
    /// Classes this function acquires directly (held or transient).
    acquires: BTreeSet<String>,
    /// `(held classes, callee name, file, line)` call sites made while
    /// holding at least one guard.
    held_calls: Vec<(BTreeSet<String>, String, String, u32)>,
    /// Every resolvable callee (for transitive acquisition closure).
    callees: BTreeSet<String>,
}

/// Extracts the static lock graph from all source files.
pub fn extract(sources: &[SourceFile]) -> LockGraph {
    let mut edges: Vec<Edge> = Vec::new();
    let mut summaries: BTreeMap<String, FnSummary> = BTreeMap::new();

    for sf in sources {
        let code: Vec<&Token> = sf
            .code
            .iter()
            .filter(|t| !sf.in_test_code(t.line))
            .collect();
        let lock_names = collect_lock_names(&code);
        if lock_names.is_empty() {
            continue;
        }
        scan_functions(sf, &code, &lock_names, &mut edges, &mut summaries);
    }

    // Fixpoint: each function's transitive acquisition set.
    let mut all_acquires: BTreeMap<String, BTreeSet<String>> = summaries
        .iter()
        .map(|(name, s)| (name.clone(), s.acquires.clone()))
        .collect();
    loop {
        let mut changed = false;
        for (name, summary) in &summaries {
            let mut merged = all_acquires[name].clone();
            for callee in &summary.callees {
                if let Some(extra) = all_acquires.get(callee) {
                    for class in extra {
                        merged.insert(class.clone());
                    }
                }
            }
            if merged.len() != all_acquires[name].len() {
                all_acquires.insert(name.clone(), merged);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Interprocedural edges: held classes at a call site → everything
    // the callee transitively acquires. Self-edges are dropped here —
    // name-based resolution is too coarse to claim re-entrancy.
    for summary in summaries.values() {
        for (held, callee, file, line) in &summary.held_calls {
            let Some(acquired) = all_acquires.get(callee) else {
                continue;
            };
            for h in held {
                for a in acquired {
                    if h != a {
                        edges.push(Edge {
                            held: h.clone(),
                            acquired: a.clone(),
                            file: file.clone(),
                            line: *line,
                        });
                    }
                }
            }
        }
    }

    // Dedup by (held, acquired), keeping the first provenance.
    let mut seen = BTreeSet::new();
    edges.retain(|e| seen.insert((e.held.clone(), e.acquired.clone())));
    edges.sort();
    LockGraph { edges }
}

/// Finds `TrackedMutex::new` / `TrackedRwLock::new` declarations and
/// maps binding names to class names (or families). Also resolves const
/// string arrays used as class sources.
fn collect_lock_names(code: &[&Token]) -> BTreeMap<String, BTreeSet<String>> {
    // Pass 1: const/static arrays of string literals.
    //   const NAME: [...] = ["a", "b", ...];
    let mut const_arrays: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut i = 0;
    while i + 1 < code.len() {
        if (code[i].is_ident("const") || code[i].is_ident("static"))
            && code[i + 1].kind == TokKind::Ident
        {
            let name = code[i + 1].text.clone();
            // Find `= [` then collect string literals to `]`. The type
            // ascription may itself contain brackets and semicolons
            // (`[&str; 16]`), so only a top-level `;` ends the item.
            let mut j = i + 2;
            let mut brackets = 0i32;
            while j < code.len() {
                if code[j].is_punct('[') {
                    brackets += 1;
                } else if code[j].is_punct(']') {
                    brackets -= 1;
                } else if brackets == 0 && (code[j].is_punct('=') || code[j].is_punct(';')) {
                    break;
                }
                j += 1;
            }
            if j < code.len()
                && code[j].is_punct('=')
                && code.get(j + 1).is_some_and(|t| t.is_punct('['))
            {
                let mut lits = Vec::new();
                let mut k = j + 2;
                while k < code.len() && !code[k].is_punct(']') {
                    if code[k].kind == TokKind::Str {
                        lits.push(code[k].text.clone());
                    }
                    k += 1;
                }
                if !lits.is_empty() {
                    const_arrays.insert(name, lits);
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }

    // Pass 2: TrackedMutex::new( / TrackedRwLock::new( sites.
    let mut names: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for i in 0..code.len() {
        let t = code[i];
        if !(t.is_ident("TrackedMutex") || t.is_ident("TrackedRwLock")) {
            continue;
        }
        // Require `:: new (` after.
        if !(code.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 3).is_some_and(|t| t.is_ident("new"))
            && code.get(i + 4).is_some_and(|t| t.is_punct('(')))
        {
            continue;
        }
        let class = match code.get(i + 5) {
            Some(arg) if arg.kind == TokKind::Str => Some(arg.text.clone()),
            Some(arg) if arg.kind == TokKind::Ident && const_arrays.contains_key(&arg.text) => {
                // Indexed const array → a family: longest common prefix
                // of the elements, plus `*`.
                let lits = &const_arrays[&arg.text];
                let mut prefix = lits[0].clone();
                for lit in &lits[1..] {
                    while !lit.starts_with(&prefix) {
                        prefix.pop();
                    }
                }
                // Shared leading digits of the member numbering are not
                // part of the family name (`shard00`/`shard01` → `shard*`,
                // not `shard0*`).
                while prefix.ends_with(|c: char| c.is_ascii_digit()) {
                    prefix.pop();
                }
                Some(format!("{prefix}*"))
            }
            _ => None,
        };
        let Some(class) = class else { continue };
        // Binding name: `name : TrackedMutex::new(…)` (struct field
        // init) or `let name = TrackedMutex::new(…)`.
        let binding = match code[..i]
            .iter()
            .rev()
            .take(3)
            .collect::<Vec<_>>()
            .as_slice()
        {
            // field: `name : Tracked…`
            [colon, name, ..] if colon.is_punct(':') && name.kind == TokKind::Ident => {
                Some(name.text.clone())
            }
            // let: `name = Tracked…` (possibly `let mut name =`)
            [eq, name, ..] if eq.is_punct('=') && name.kind == TokKind::Ident => {
                Some(name.text.clone())
            }
            _ => None,
        };
        if let Some(binding) = binding {
            names.entry(binding).or_default().insert(class);
        }
    }
    names
}

/// Scans function bodies for acquisitions, guard lifetimes, and call
/// sites, pushing direct edges and filling summaries.
fn scan_functions(
    sf: &SourceFile,
    code: &[&Token],
    lock_names: &BTreeMap<String, BTreeSet<String>>,
    edges: &mut Vec<Edge>,
    summaries: &mut BTreeMap<String, FnSummary>,
) {
    let mut i = 0;
    while i < code.len() {
        if !code[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = code.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let fn_name = name_tok.text.clone();
        // Find the body `{` (or `;` for a bodiless trait method).
        let mut j = i + 2;
        let body_start = loop {
            match code.get(j) {
                None => break None,
                Some(t) if t.is_punct(';') => break None,
                Some(t) if t.is_punct('{') => break Some(j),
                Some(_) => j += 1,
            }
        };
        let Some(body_start) = body_start else {
            i = j;
            continue;
        };
        // Brace-match the body.
        let mut depth = 1u32;
        let mut k = body_start + 1;
        while k < code.len() && depth > 0 {
            if code[k].is_punct('{') {
                depth += 1;
            } else if code[k].is_punct('}') {
                depth -= 1;
            }
            k += 1;
        }
        let body = &code[body_start + 1..k.saturating_sub(1).max(body_start + 1)];
        let summary = scan_body(sf, body, lock_names, edges);
        let entry = summaries.entry(fn_name).or_default();
        entry.acquires.extend(summary.acquires);
        entry.held_calls.extend(summary.held_calls);
        entry.callees.extend(summary.callees);
        i = body_start + 1; // nested fns get their own pass
    }
}

/// One tracked guard: binding name (if `let`-bound), class, brace depth
/// at binding.
struct Guard {
    name: Option<String>,
    class: String,
    depth: u32,
}

fn scan_body(
    sf: &SourceFile,
    body: &[&Token],
    lock_names: &BTreeMap<String, BTreeSet<String>>,
    edges: &mut Vec<Edge>,
) -> FnSummary {
    let mut summary = FnSummary::default();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0u32;
    // Pending `let` binding: (name, set at depth).
    let mut pending_let: Option<String> = None;
    let mut i = 0;
    while i < body.len() {
        let t = body[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            guards.retain(|g| g.depth < depth);
            depth = depth.saturating_sub(1);
        } else if t.is_punct(';') {
            pending_let = None;
        } else if t.is_ident("let") {
            // `let [mut] name =`
            let mut j = i + 1;
            if body.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let (Some(name), Some(eq)) = (body.get(j), body.get(j + 1)) {
                if name.kind == TokKind::Ident && eq.is_punct('=') {
                    pending_let = Some(name.text.clone());
                }
            }
        } else if t.is_ident("drop")
            && body.get(i + 1).is_some_and(|t| t.is_punct('('))
            && body.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            if let Some(arg) = body.get(i + 2) {
                if arg.kind == TokKind::Ident {
                    guards.retain(|g| g.name.as_deref() != Some(arg.text.as_str()));
                }
            }
        } else if t.kind == TokKind::Ident {
            // Acquisition: `name . lock|read|write ( )` with a known
            // receiver name.
            let is_acquire = lock_names.contains_key(&t.text)
                && body.get(i + 1).is_some_and(|n| n.is_punct('.'))
                && body.get(i + 2).is_some_and(|n| {
                    n.is_ident("lock") || n.is_ident("read") || n.is_ident("write")
                })
                && body.get(i + 3).is_some_and(|n| n.is_punct('('))
                && body.get(i + 4).is_some_and(|n| n.is_punct(')'));
            if is_acquire {
                let after = body.get(i + 5);
                for class in &lock_names[&t.text] {
                    for g in &guards {
                        if g.class != *class {
                            edges.push(Edge {
                                held: g.class.clone(),
                                acquired: class.clone(),
                                file: sf.path.clone(),
                                line: t.line,
                            });
                        }
                    }
                    summary.acquires.insert(class.clone());
                }
                // Persistent only when the guard itself is bound:
                // `let g = x.lock();` (next token is `;`).
                let persists = pending_let.is_some() && after.is_some_and(|n| n.is_punct(';'));
                if persists {
                    for class in &lock_names[&t.text] {
                        guards.push(Guard {
                            name: pending_let.clone(),
                            class: class.clone(),
                            depth,
                        });
                    }
                    pending_let = None;
                }
                i += 5;
                continue;
            }
            // Call site: `name (` that isn't a definition keyword.
            if body.get(i + 1).is_some_and(|n| n.is_punct('('))
                && !CALLEE_STOPLIST.contains(&t.text.as_str())
                && !matches!(
                    t.text.as_str(),
                    "fn" | "if"
                        | "while"
                        | "for"
                        | "match"
                        | "loop"
                        | "return"
                        | "Some"
                        | "Ok"
                        | "Err"
                        | "None"
                        | "Vec"
                        | "Box"
                        | "Arc"
                )
            {
                summary.callees.insert(t.text.clone());
                if !guards.is_empty() {
                    let held: BTreeSet<String> = guards.iter().map(|g| g.class.clone()).collect();
                    summary
                        .held_calls
                        .push((held, t.text.clone(), sf.path.clone(), t.line));
                }
            }
        }
        i += 1;
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SourceFile;

    fn graph_of(src: &str) -> LockGraph {
        let sf = SourceFile::new("crates/x/src/lib.rs".to_string(), src);
        extract(&[sf])
    }

    #[test]
    fn nested_guards_yield_edges() {
        let g = graph_of(
            r#"
struct S { a: TrackedMutex<u32>, b: TrackedMutex<u32> }
impl S {
    fn make() -> S { S { a: TrackedMutex::new("x.a", 0), b: TrackedMutex::new("x.b", 0) } }
    fn nest(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
    }
}
"#,
        );
        let edges = g.edges_for_report();
        assert!(edges.iter().any(|(h, a, _, _)| h == "x.a" && a == "x.b"));
    }

    #[test]
    fn opposite_orders_form_a_cycle() {
        let g = graph_of(
            r#"
fn mk() { let m1 = TrackedMutex::new("c.one", ()); let m2 = TrackedMutex::new("c.two", ()); }
fn p1(m1: &TrackedMutex<()>, m2: &TrackedMutex<()>) {
    let g1 = m1.lock();
    let g2 = m2.lock();
}
fn p2(m1: &TrackedMutex<()>, m2: &TrackedMutex<()>) {
    let g2 = m2.lock();
    let g1 = m1.lock();
}
"#,
        );
        let cycles = g.cycles(&[]);
        assert_eq!(cycles.len(), 1, "edges: {:?}", g.edges_for_report());
        assert!(cycles[0].contains(&"c.one".to_string()));
    }

    #[test]
    fn scope_exit_releases_guards() {
        let g = graph_of(
            r#"
fn mk() { let a = TrackedMutex::new("s.a", ()); let b = TrackedMutex::new("s.b", ()); }
fn f(a: &TrackedMutex<()>, b: &TrackedMutex<()>) {
    {
        let ga = a.lock();
    }
    let gb = b.lock();
}
"#,
        );
        assert!(g.edges_for_report().is_empty());
    }

    #[test]
    fn transient_acquisition_holds_nothing() {
        let g = graph_of(
            r#"
fn mk() { let a = TrackedMutex::new("t.a", 0u32); let b = TrackedMutex::new("t.b", 0u32); }
fn f(a: &TrackedMutex<u32>, b: &TrackedMutex<u32>) {
    let n = a.lock().wrapping_add(1);
    let gb = b.lock();
}
"#,
        );
        assert!(g.edges_for_report().is_empty());
    }

    #[test]
    fn const_array_classes_become_a_family() {
        let g = graph_of(
            r#"
const CLASSES: [&str; 2] = ["dev.shard00", "dev.shard01"];
struct S { regions: TrackedRwLock<u32>, state: TrackedRwLock<u32> }
impl S {
    fn mk(i: usize) -> S {
        S { regions: TrackedRwLock::new("dev.regions", 0), state: TrackedRwLock::new(CLASSES[i], 0) }
    }
    fn f(&self) {
        let rt = self.regions.write();
        let st = self.state.write();
    }
}
"#,
        );
        let edges = g.edges_for_report();
        assert!(
            edges
                .iter()
                .any(|(h, a, _, _)| h == "dev.regions" && a == "dev.shard*"),
            "edges: {edges:?}"
        );
        assert!(g.cycles(&["dev.shard*".to_string()]).is_empty());
    }

    #[test]
    fn interprocedural_edges_propagate() {
        let g = graph_of(
            r#"
fn mk() { let inner = TrackedMutex::new("store.inner", ()); let dev = TrackedMutex::new("dev.lock", ()); }
fn alloc_batch(dev: &TrackedMutex<()>) {
    let gd = dev.lock();
}
fn intern(inner: &TrackedMutex<()>, dev: &TrackedMutex<()>) {
    let gi = inner.lock();
    alloc_batch(dev);
}
"#,
        );
        let edges = g.edges_for_report();
        assert!(
            edges
                .iter()
                .any(|(h, a, _, _)| h == "store.inner" && a == "dev.lock"),
            "edges: {edges:?}"
        );
    }

    #[test]
    fn runtime_comparison_flags_reversal_and_family_order() {
        let g = graph_of(
            r#"
fn mk() { let a = TrackedMutex::new("r.a", ()); let b = TrackedMutex::new("r.b", ()); }
fn f(a: &TrackedMutex<()>, b: &TrackedMutex<()>) {
    let ga = a.lock();
    let gb = b.lock();
}
"#,
        );
        let fams = vec!["dev.shard*".to_string()];
        let runtime = vec![
            ("r.b".to_string(), "r.a".to_string()), // reverse of static
            ("dev.shard05".to_string(), "dev.shard02".to_string()), // descending
            ("dev.shard01".to_string(), "dev.shard03".to_string()), // ascending: fine
        ];
        let cmp = g.compare_runtime(&runtime, &fams);
        assert_eq!(cmp.contradictions.len(), 2, "{:?}", cmp.contradictions);
        // The static a→b edge was never exercised: a coverage gap.
        assert_eq!(
            cmp.coverage_gaps,
            vec![("r.a".to_string(), "r.b".to_string())]
        );
    }
}
