//! A hand-rolled Rust lexer — just enough token fidelity for lint rules.
//!
//! The workspace builds with no network access, so `syn`/`quote` are off
//! the table; this lexer is the dependency-free substitute. It does not
//! parse Rust — it tokenizes it, faithfully enough that the rule engine
//! can tell an identifier from the inside of a string literal or a doc
//! comment. The tricky corners it must get right (and that
//! `tests/lexer_edges.rs` pins down):
//!
//! * **Raw strings** `r"…"`, `r#"…"#`, `r##"…"##` (any hash depth), plus
//!   byte-string variants `b"…"`, `br#"…"#` — a `HashMap` mentioned
//!   inside one is *data*, not a violation.
//! * **Nested block comments** `/* /* … */ */` — Rust nests them; a
//!   naive scanner would resurface too early and misread live code as
//!   commented out (or vice versa).
//! * **Lifetimes vs. char literals**: `'a` in `&'a str` is a lifetime,
//!   `'a'` is a char, `'\''` is a char with an escape.
//! * **Raw identifiers** `r#fn`, `r#ident` — identifiers, not the start
//!   of a raw string.
//!
//! Every token carries the 1-based source line it starts on, which is
//! all the diagnostics need.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `HashMap`, `r#ident` — raw
    /// identifiers are normalized to their bare name).
    Ident,
    /// A lifetime (`'a`, `'static`), text without the leading quote.
    Lifetime,
    /// Any string-like literal: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    Str,
    /// A char or byte literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// A numeric literal (integers and floats, loosely scanned).
    Num,
    /// A single punctuation character (`.`, `(`, `{`, `#`, …).
    Punct,
    /// A `//` line comment, text including the slashes.
    LineComment,
    /// A `/* … */` block comment (nested), text including delimiters.
    BlockComment,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Token text. For `Ident` the identifier itself (raw idents without
    /// the `r#`); for `Punct` the single character; for comments the full
    /// comment text; for `Str` the literal body (between the delimiters,
    /// escapes unprocessed — lock-class names never use them); empty for
    /// `Char`/`Num`.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// `true` if this is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// `true` if this is a punctuation token with this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// Lexes `src`, returning every token including comments (the rule
/// engine reads `// cxl-lint: allow(…)` suppressions out of the comment
/// stream before discarding it).
///
/// The lexer is total: malformed input never panics, it degrades to
/// punct tokens. An unterminated string or comment consumes to EOF.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl<'a> Lexer<'a> {
    fn peek(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    /// Advances one byte, counting newlines.
    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied();
        if let Some(b) = b {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
            }
        }
        b
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(b) = self.peek(0) {
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(line),
                b'r' | b'b' => self.raw_or_ident(line),
                b'"' => {
                    self.bump();
                    let body = self.plain_string();
                    self.push(TokKind::Str, body, line);
                }
                b'\'' => self.lifetime_or_char(line),
                _ if is_ident_start(b) => self.ident(line),
                _ if b.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, (b as char).to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let start = self.pos;
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: consume to EOF
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::BlockComment, text, line);
    }

    /// Disambiguates `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `b'…'`,
    /// `br#"…"#` from plain identifiers starting with `r`/`b`.
    fn raw_or_ident(&mut self, line: u32) {
        let b0 = self.peek(0).expect("caller saw a byte");
        // How many prefix bytes form a string-ish prefix?
        let (skip, hashes_at) = match (b0, self.peek(1)) {
            (b'r', Some(b'"' | b'#')) => (1, 1),
            (b'b', Some(b'"')) => {
                // b"…" — escapes apply, unlike raw strings.
                self.bump(); // b
                self.bump(); // "
                let body = self.plain_string();
                self.push(TokKind::Str, body, line);
                return;
            }
            (b'b', Some(b'\'')) => {
                // byte char literal b'x'
                self.bump(); // b
                self.bump(); // '
                self.char_body();
                self.push(TokKind::Char, String::new(), line);
                return;
            }
            (b'b', Some(b'r')) if matches!(self.peek(2), Some(b'"' | b'#')) => (2, 2),
            _ => {
                self.ident(line);
                return;
            }
        };
        // Count hashes after the prefix.
        let mut hashes = 0usize;
        while self.peek(hashes_at + hashes) == Some(b'#') {
            hashes += 1;
        }
        match self.peek(hashes_at + hashes) {
            Some(b'"') => {
                // Raw (byte) string with `hashes` hashes.
                for _ in 0..skip + hashes + 1 {
                    self.bump();
                }
                let body = self.raw_string_body(hashes);
                self.push(TokKind::Str, body, line);
            }
            Some(c) if hashes == 1 && skip == 1 && b0 == b'r' && is_ident_start(c) => {
                // Raw identifier r#ident: normalize to the bare name.
                self.bump(); // r
                self.bump(); // #
                let start = self.pos;
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                self.push(TokKind::Ident, text, line);
            }
            _ => self.ident(line),
        }
    }

    /// Consumes a plain `"…"` body after the opening quote, returning it
    /// (without the closing quote; escapes left as written).
    fn plain_string(&mut self) -> String {
        let start = self.pos;
        let mut end = self.pos;
        while let Some(b) = self.bump() {
            match b {
                b'\\' => {
                    self.bump(); // whatever is escaped, even `"` or `\`
                    end = self.pos;
                }
                b'"' => break,
                _ => end = self.pos,
            }
        }
        String::from_utf8_lossy(&self.src[start..end]).into_owned()
    }

    /// Consumes a raw string body until `"` followed by `hashes` hashes,
    /// returning the body.
    fn raw_string_body(&mut self, hashes: usize) -> String {
        let start = self.pos;
        let mut end = self.pos;
        while let Some(b) = self.bump() {
            if b == b'"' {
                let mut n = 0;
                while n < hashes && self.peek(n) == Some(b'#') {
                    n += 1;
                }
                if n == hashes {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
            end = self.pos;
        }
        String::from_utf8_lossy(&self.src[start..end]).into_owned()
    }

    /// After an opening `'` of a char literal, consumes the body and the
    /// closing quote.
    fn char_body(&mut self) {
        match self.bump() {
            Some(b'\\') => {
                self.bump(); // escaped char ( \n, \', \u{…} start, … )
                             // Consume a possible \u{…} payload and the closing quote.
                while let Some(b) = self.peek(0) {
                    self.bump();
                    if b == b'\'' {
                        break;
                    }
                }
            }
            Some(_) => {
                // One (possibly multi-byte) char, then the closing quote.
                while let Some(b) = self.peek(0) {
                    self.bump();
                    if b == b'\'' {
                        break;
                    }
                }
            }
            None => {}
        }
    }

    /// `'` starts either a lifetime (`'a`, `'static`) or a char literal
    /// (`'a'`, `'\n'`). Rule: after the quote, an escape or a
    /// non-identifier is always a char; an identifier followed by a
    /// closing `'` is a char (`'a'`), otherwise a lifetime.
    fn lifetime_or_char(&mut self, line: u32) {
        self.bump(); // opening '
        match self.peek(0) {
            Some(b'\\') => {
                self.char_body();
                self.push(TokKind::Char, String::new(), line);
            }
            Some(b) if is_ident_start(b) => {
                // Scan the identifier without committing.
                let mut len = 1;
                while self.peek(len).is_some_and(is_ident_continue) {
                    len += 1;
                }
                if self.peek(len) == Some(b'\'') {
                    // 'a' — a char literal.
                    for _ in 0..=len {
                        self.bump();
                    }
                    self.push(TokKind::Char, String::new(), line);
                } else {
                    let start = self.pos;
                    for _ in 0..len {
                        self.bump();
                    }
                    let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                    self.push(TokKind::Lifetime, text, line);
                }
            }
            Some(_) => {
                // ',' etc. — a one-char literal like '(' or ' '.
                self.char_body();
                self.push(TokKind::Char, String::new(), line);
            }
            None => self.push(TokKind::Punct, "'".to_string(), line),
        }
    }

    fn ident(&mut self, line: u32) {
        let start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Ident, text, line);
    }

    /// Loose numeric scan: digits, `_`, radix prefixes, type suffixes,
    /// one fractional part and an exponent — while leaving `..` (range)
    /// and method calls like `0.max(x)` alone.
    fn number(&mut self, line: u32) {
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.bump();
        }
        // Fraction: only if `.` is followed by a digit (so `0..9` and
        // `1.max(2)` stay three tokens).
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.bump();
            }
        }
        self.push(TokKind::Num, String::new(), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        assert_eq!(
            idents(r#"let x = "HashMap in a string";"#),
            vec!["let", "x"]
        );
    }

    #[test]
    fn line_numbers_advance() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
