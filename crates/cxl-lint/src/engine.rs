//! The rule engine: walks lexed source files, applies the token-level
//! rules, wires in the lock-graph analysis, and honors inline
//! suppressions.
//!
//! ## Rule catalog
//!
//! | rule id                   | severity | what it catches |
//! |---------------------------|----------|-----------------|
//! | `wall-clock`              | error    | `std::time::Instant` / `SystemTime` anywhere — all time must flow through `simclock` virtual time |
//! | `hash-iteration`          | error    | `HashMap` / `HashSet` in determinism-sensitive modules (report/bench/trace emitters and the structures feeding them) — iteration order leaks into committed `BENCH_*.json` |
//! | `raw-lock`                | error    | raw `parking_lot` / `std::sync` `Mutex` / `RwLock` outside `cxl_mem::lockdep` — invisible to lockdep's runtime graph and to the static one |
//! | `device-unwrap`           | error    | `.unwrap()` / `.expect(…)` on the device data path — a `FaultHook` may veto any operation, and panicking bypasses the injected-fault cadence |
//! | `non-exhaustive-error`    | error    | `pub enum …Error` without `#[non_exhaustive]` — fault classes grow; downstream matches must not break |
//! | `bad-allow`               | error    | a `cxl-lint: allow(…)` comment without a justification |
//! | `lock-cycle`              | error    | a cycle in the statically extracted lock-class graph |
//! | `lock-order-contradiction`| error    | a runtime lockdep edge opposing the static graph or an ordered family's discipline |
//! | `lock-coverage`           | warning  | static lock edges no runtime lockdep test ever exercised |
//!
//! ## Suppression
//!
//! `// cxl-lint: allow(rule-id): justification` on the violating line or
//! on its own line directly above suppresses that rule there. The
//! justification is mandatory — an allow without one is itself a
//! violation (`bad-allow`). There is no blanket file-level opt-out; the
//! escape hatch is deliberately narrow and auditable (`git grep
//! 'cxl-lint: allow'` is the suppression review).

use std::collections::BTreeMap;
use std::path::Path;

use crate::config::{path_matches, Config};
use crate::diag::{Report, Severity, Violation};
use crate::lexer::{lex, TokKind, Token};
use crate::lockgraph;

/// A lexed source file plus the side tables rules need.
pub struct SourceFile {
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// Token stream with comments removed.
    pub code: Vec<Token>,
    /// `line → rule ids` allowed there.
    allows: BTreeMap<u32, Vec<String>>,
    /// Malformed allow comments, reported as `bad-allow`.
    bad_allows: Vec<(u32, String)>,
    /// Line ranges (inclusive) covered by `#[cfg(test)]` items.
    test_ranges: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Lexes `src` and computes suppression and test-region tables.
    pub fn new(path: String, src: &str) -> SourceFile {
        let tokens = lex(src);
        let mut allows: BTreeMap<u32, Vec<String>> = BTreeMap::new();
        let mut bad_allows = Vec::new();
        let mut code = Vec::with_capacity(tokens.len());
        for t in tokens {
            match t.kind {
                TokKind::LineComment | TokKind::BlockComment => match parse_allow(&t.text) {
                    Some(Ok(rule)) => allows.entry(t.line).or_default().push(rule),
                    Some(Err(why)) => bad_allows.push((t.line, why)),
                    None => {}
                },
                _ => code.push(t),
            }
        }
        let test_ranges = find_test_ranges(&code);
        SourceFile {
            path,
            code,
            allows,
            bad_allows,
            test_ranges,
        }
    }

    /// `true` if `line` falls inside a `#[cfg(test)]` item.
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// `true` if `rule` is allowed (with justification) on `line` or on
    /// the line directly above it.
    fn allowed(&self, rule: &str, line: u32) -> bool {
        [line, line.saturating_sub(1)].iter().any(|l| {
            self.allows
                .get(l)
                .is_some_and(|rs| rs.iter().any(|r| r == rule))
        })
    }
}

/// Parses a `cxl-lint:` marker out of a comment. Returns `None` if the
/// comment has no marker, `Some(Ok(rule))` for a well-formed allow, and
/// `Some(Err(reason))` for a malformed one.
fn parse_allow(comment: &str) -> Option<Result<String, String>> {
    // Doc comments *document* the marker syntax (this crate's own docs
    // do); only plain `//` / `/* */` comments carry live suppressions.
    if ["///", "//!", "/**", "/*!"]
        .iter()
        .any(|p| comment.starts_with(p))
    {
        return None;
    }
    let idx = comment.find("cxl-lint:")?;
    let rest = comment[idx + "cxl-lint:".len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Some(Err(
            "expected `cxl-lint: allow(rule): justification`".to_string()
        ));
    };
    let Some((rule, after)) = rest.split_once(')') else {
        return Some(Err("unterminated `allow(` — missing `)`".to_string()));
    };
    let rule = rule.trim();
    if rule.is_empty() {
        return Some(Err("empty rule id in `allow()`".to_string()));
    }
    let after = after.trim_start();
    let justification = after.strip_prefix(':').map(str::trim).unwrap_or("");
    if justification.is_empty() {
        return Some(Err(format!(
            "`allow({rule})` needs a justification: `cxl-lint: allow({rule}): why this is sound`"
        )));
    }
    Some(Ok(rule.to_string()))
}

/// Finds line ranges of items annotated `#[cfg(test)]` (or any `cfg`
/// whose argument mentions `test`): the attribute, any further
/// attributes, then the item's brace-matched body.
fn find_test_ranges(code: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !(code[i].is_punct('#') && code.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        // Parse one attribute: #[ ... ] with bracket matching.
        let attr_start_line = code[i].line;
        let mut j = i + 2;
        let mut depth = 1u32;
        let mut is_cfg_test = code.get(j).is_some_and(|t| t.is_ident("cfg"));
        let mut saw_test = false;
        while j < code.len() && depth > 0 {
            if code[j].is_punct('[') {
                depth += 1;
            } else if code[j].is_punct(']') {
                depth -= 1;
            } else if code[j].is_ident("test") {
                saw_test = true;
            }
            j += 1;
        }
        is_cfg_test = is_cfg_test && saw_test;
        if !is_cfg_test {
            i = j;
            continue;
        }
        // Skip any further attributes.
        while j < code.len()
            && code[j].is_punct('#')
            && code.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            let mut d = 0u32;
            j += 1;
            loop {
                if j >= code.len() {
                    break;
                }
                if code[j].is_punct('[') {
                    d += 1;
                } else if code[j].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // The annotated item: body is the first brace-matched block
        // before a top-level `;` (a `;` first means no body).
        let mut k = j;
        let mut body_end_line = None;
        while k < code.len() {
            if code[k].is_punct(';') {
                body_end_line = Some(code[k].line);
                break;
            }
            if code[k].is_punct('{') {
                let mut d = 1u32;
                let mut m = k + 1;
                while m < code.len() && d > 0 {
                    if code[m].is_punct('{') {
                        d += 1;
                    } else if code[m].is_punct('}') {
                        d -= 1;
                    }
                    m += 1;
                }
                body_end_line = Some(code[m.saturating_sub(1).min(code.len() - 1)].line);
                k = m;
                break;
            }
            k += 1;
        }
        if let Some(end) = body_end_line {
            ranges.push((attr_start_line, end));
            i = k.max(j);
        } else {
            i = j;
        }
    }
    ranges
}

/// Runtime lockdep edges, as `(held, acquired)` class names.
pub type RuntimeEdges = [(String, String)];

/// Lints in-memory sources. `files` is `(workspace-relative path,
/// contents)`; `runtime_edges` enables the static-vs-runtime lockdep
/// cross-check. This is the core entry point — the binary and every
/// fixture test go through it.
pub fn lint_files(
    files: &[(String, String)],
    config: &Config,
    runtime_edges: Option<&RuntimeEdges>,
) -> Report {
    let sources: Vec<SourceFile> = files
        .iter()
        .map(|(path, text)| SourceFile::new(path.clone(), text))
        .collect();

    let mut violations = Vec::new();
    for sf in &sources {
        for (line, why) in &sf.bad_allows {
            violations.push(Violation {
                rule: "bad-allow",
                severity: Severity::Error,
                file: sf.path.clone(),
                line: *line,
                message: why.clone(),
            });
        }
        rule_wall_clock(sf, &mut violations);
        rule_hash_iteration(sf, config, &mut violations);
        rule_raw_lock(sf, config, &mut violations);
        rule_device_unwrap(sf, config, &mut violations);
        rule_non_exhaustive_error(sf, &mut violations);
    }

    // Lock-class graph: extraction, cycles, runtime cross-check.
    let graph = lockgraph::extract(&sources);
    for cycle in graph.cycles(&config.ordered_families) {
        violations.push(Violation {
            rule: "lock-cycle",
            severity: Severity::Error,
            file: "(lock graph)".to_string(),
            line: 0,
            message: format!(
                "static lock-class cycle: {} -> {}",
                cycle.join(" -> "),
                cycle[0]
            ),
        });
    }
    let mut coverage_gaps = Vec::new();
    if let Some(runtime) = runtime_edges {
        let cmp = graph.compare_runtime(runtime, &config.ordered_families);
        for (held, acquired, why) in cmp.contradictions {
            violations.push(Violation {
                rule: "lock-order-contradiction",
                severity: Severity::Error,
                file: "(lock graph)".to_string(),
                line: 0,
                message: format!("runtime edge {held} -> {acquired} {why}"),
            });
        }
        coverage_gaps = cmp.coverage_gaps;
    }

    // Apply inline allows and config-disabled rules, then sort.
    let by_path: BTreeMap<&str, &SourceFile> =
        sources.iter().map(|s| (s.path.as_str(), s)).collect();
    violations.retain(|v| {
        if config.disabled_rules.iter().any(|r| r == v.rule) {
            return false;
        }
        if v.line == 0 {
            return true; // graph-level findings have no source line
        }
        !by_path
            .get(v.file.as_str())
            .is_some_and(|sf| sf.allowed(v.rule, v.line))
    });
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    Report {
        violations,
        lock_edges: graph.edges_for_report(),
        coverage_gaps,
        files_scanned: sources.len(),
    }
}

/// Lints the workspace on disk: expands `config.roots` under `root`,
/// reads every `.rs` file in sorted order, and runs [`lint_files`].
///
/// # Errors
///
/// Propagates I/O errors from the directory walk (an unreadable source
/// tree must fail the gate, not pass it silently).
pub fn lint_workspace(
    root: &Path,
    config: &Config,
    runtime_edges: Option<&RuntimeEdges>,
) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for root_glob in &config.roots {
        for dir in crate::config::expand_root(root, root_glob) {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let text = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        sources.push((rel, text));
    }
    Ok(lint_files(&sources, config, runtime_edges))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Token rules
// ---------------------------------------------------------------------

fn rule_wall_clock(sf: &SourceFile, out: &mut Vec<Violation>) {
    for t in &sf.code {
        if t.kind == TokKind::Ident && (t.text == "Instant" || t.text == "SystemTime") {
            out.push(Violation {
                rule: "wall-clock",
                severity: Severity::Error,
                file: sf.path.clone(),
                line: t.line,
                message: format!(
                    "`{}` is wall-clock time; the simulator is virtual-time only — use \
                     `simclock::SimTime`/`SimDuration` so armed and unarmed runs stay bit-identical",
                    t.text
                ),
            });
        }
    }
}

fn rule_hash_iteration(sf: &SourceFile, config: &Config, out: &mut Vec<Violation>) {
    if !path_matches(&sf.path, &config.deterministic_modules) {
        return;
    }
    for t in &sf.code {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            out.push(Violation {
                rule: "hash-iteration",
                severity: Severity::Error,
                file: sf.path.clone(),
                line: t.line,
                message: format!(
                    "`{}` in a determinism-sensitive module: iteration order is randomized and \
                     leaks into reports/traces — use `BTreeMap`/`BTreeSet` or sort explicitly",
                    t.text
                ),
            });
        }
    }
}

fn rule_raw_lock(sf: &SourceFile, config: &Config, out: &mut Vec<Violation>) {
    if path_matches(&sf.path, &config.raw_lock_exempt) {
        return;
    }
    for t in &sf.code {
        if t.kind == TokKind::Ident
            && (t.text == "parking_lot" || t.text == "Mutex" || t.text == "RwLock")
        {
            out.push(Violation {
                rule: "raw-lock",
                severity: Severity::Error,
                file: sf.path.clone(),
                line: t.line,
                message: format!(
                    "raw `{}` is invisible to lockdep — use \
                     `cxl_mem::lockdep::TrackedMutex`/`TrackedRwLock` with a lock-class name",
                    t.text
                ),
            });
        }
    }
}

fn rule_device_unwrap(sf: &SourceFile, config: &Config, out: &mut Vec<Violation>) {
    if !path_matches(&sf.path, &config.device_path_modules) {
        return;
    }
    for (i, t) in sf.code.iter().enumerate() {
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && sf.code[i - 1].is_punct('.')
            && sf.code.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !sf.in_test_code(t.line)
        {
            out.push(Violation {
                rule: "device-unwrap",
                severity: Severity::Error,
                file: sf.path.clone(),
                line: t.line,
                message: format!(
                    "`.{}()` on the device data path: a `FaultHook` may veto any operation, and \
                     panicking bypasses the fault-injection cadence — propagate `CxlError` instead",
                    t.text
                ),
            });
        }
    }
}

fn rule_non_exhaustive_error(sf: &SourceFile, out: &mut Vec<Violation>) {
    for (i, t) in sf.code.iter().enumerate() {
        if !t.is_ident("enum") {
            continue;
        }
        let Some(name) = sf.code.get(i + 1) else {
            continue;
        };
        if name.kind != TokKind::Ident || !name.text.ends_with("Error") {
            continue;
        }
        // Only public enums: `pub enum X` or `pub(crate) enum X`.
        let is_pub = sf.code[..i].iter().rev().take(8).any(|p| p.is_ident("pub"));
        if !is_pub {
            continue;
        }
        // Scan the attribute window directly above the item for
        // `non_exhaustive`: walk back over attribute/visibility tokens,
        // stopping at the previous item's `}` or `;`.
        let mut has = false;
        for p in sf.code[..i].iter().rev() {
            if p.is_punct('}') || p.is_punct(';') || p.is_punct('{') {
                break;
            }
            if p.is_ident("non_exhaustive") {
                has = true;
                break;
            }
        }
        if !has {
            out.push(Violation {
                rule: "non-exhaustive-error",
                severity: Severity::Error,
                file: sf.path.clone(),
                line: name.line,
                message: format!(
                    "public error enum `{}` must be `#[non_exhaustive]`: fault classes grow \
                     (poison, transient, crash, eviction…) and downstream matches must keep a \
                     wildcard arm",
                    name.text
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_parsing_accepts_and_rejects() {
        assert_eq!(
            parse_allow("// cxl-lint: allow(raw-lock): below cxl-mem in the layering"),
            Some(Ok("raw-lock".to_string()))
        );
        assert!(matches!(
            parse_allow("// cxl-lint: allow(raw-lock)"),
            Some(Err(_))
        ));
        assert!(parse_allow("// ordinary comment").is_none());
        // Doc comments describing the syntax are not live markers.
        assert!(parse_allow("/// write `// cxl-lint: allow(x)` to suppress").is_none());
        assert!(parse_allow("//! the `cxl-lint: allow` escape hatch").is_none());
    }

    #[test]
    fn test_ranges_cover_cfg_test_mods() {
        let sf = SourceFile::new(
            "x.rs".to_string(),
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n",
        );
        assert!(!sf.in_test_code(1));
        assert!(sf.in_test_code(3));
        assert!(sf.in_test_code(4));
        assert!(!sf.in_test_code(6));
    }
}
