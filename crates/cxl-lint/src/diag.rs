//! Diagnostics: typed violations, human rendering, and the
//! machine-readable JSON report.
//!
//! The JSON schema is stable and versioned ([`JSON_SCHEMA_VERSION`]);
//! `tests/json_roundtrip.rs` parses the emitted document with
//! `cxl-telemetry`'s JSON parser and checks every field survives.

use std::fmt;

/// Version of the `--json` output schema.
pub const JSON_SCHEMA_VERSION: u32 = 1;

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: never fails the lint (lock-coverage gaps).
    Warning,
    /// Fails the lint (exit code 1).
    Error,
}

impl Severity {
    fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule id (`wall-clock`, `hash-iteration`, `raw-lock`,
    /// `lock-cycle`, `lock-order-contradiction`, `lock-coverage`,
    /// `device-unwrap`, `non-exhaustive-error`, `bad-allow`).
    pub rule: &'static str,
    /// Severity — only `Error` findings fail the run.
    pub severity: Severity,
    /// Workspace-relative file path (`/`-separated).
    pub file: String,
    /// 1-based line, or 0 for whole-graph findings (cycles).
    pub line: u32,
    /// Human explanation, including the suggested fix.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(
                f,
                "{}: [{}] {}: {}",
                self.severity.as_str(),
                self.rule,
                self.file,
                self.message
            )
        } else {
            write!(
                f,
                "{}: [{}] {}:{}: {}",
                self.severity.as_str(),
                self.rule,
                self.file,
                self.line,
                self.message
            )
        }
    }
}

/// The full result of a lint run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Every finding, in file/line order.
    pub violations: Vec<Violation>,
    /// The static lock-class graph: `(held, acquired, file, line)`.
    pub lock_edges: Vec<(String, String, String, u32)>,
    /// Static edges no runtime edge matched (only populated when runtime
    /// edges were supplied): lockdep tests never exercised these.
    pub coverage_gaps: Vec<(String, String)>,
    /// Files linted.
    pub files_scanned: usize,
}

impl Report {
    /// `true` if no error-severity finding exists.
    pub fn is_clean(&self) -> bool {
        !self
            .violations
            .iter()
            .any(|v| v.severity == Severity::Error)
    }

    /// Human-readable rendering (one line per finding plus a summary).
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&v.to_string());
            out.push('\n');
        }
        for (held, acquired) in &self.coverage_gaps {
            out.push_str(&format!(
                "note: [lock-coverage] static edge {held} -> {acquired} never exercised by runtime lockdep tests\n"
            ));
        }
        let errors = self
            .violations
            .iter()
            .filter(|v| v.severity == Severity::Error)
            .count();
        out.push_str(&format!(
            "cxl-lint: {} file(s), {} lock edge(s), {} error(s), {} warning(s)\n",
            self.files_scanned,
            self.lock_edges.len(),
            errors,
            self.violations.len() - errors,
        ));
        out
    }

    /// Machine-readable JSON document (schema pinned by
    /// [`JSON_SCHEMA_VERSION`]).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"schema_version\": {JSON_SCHEMA_VERSION},\n  \"files_scanned\": {},\n  \"clean\": {},\n",
            self.files_scanned,
            self.is_clean()
        ));
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"severity\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(v.rule),
                json_str(v.severity.as_str()),
                json_str(&v.file),
                v.line,
                json_str(&v.message)
            ));
        }
        out.push_str(if self.violations.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"lock_graph\": [");
        for (i, (held, acquired, file, line)) in self.lock_edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"held\": {}, \"acquired\": {}, \"file\": {}, \"line\": {line}}}",
                json_str(held),
                json_str(acquired),
                json_str(file)
            ));
        }
        out.push_str(if self.lock_edges.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"coverage_gaps\": [");
        for (i, (held, acquired)) in self.coverage_gaps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"held\": {}, \"acquired\": {}}}",
                json_str(held),
                json_str(acquired)
            ));
        }
        out.push_str(if self.coverage_gaps.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }
}

/// JSON string escaping (the full control-character set).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_renders_empty_arrays() {
        let r = Report::default();
        assert!(r.is_clean());
        let json = r.render_json();
        assert!(json.contains("\"violations\": []"));
        assert!(json.contains("\"clean\": true"));
    }

    #[test]
    fn escaping_covers_quotes_and_newlines() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
