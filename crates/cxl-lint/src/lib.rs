//! `cxl-lint` — dependency-free workspace static analysis.
//!
//! The simulator's correctness story rests on invariants no
//! off-the-shelf tool knows about:
//!
//! * **Virtual time only.** Armed and unarmed telemetry runs, and every
//!   committed `BENCH_*.json`, must stay bit-identical; one
//!   `std::time::Instant` or one `HashMap` iteration in a report path
//!   breaks that silently.
//! * **Lock discipline.** Every lock must be a
//!   [`TrackedMutex`](../cxl_mem/lockdep) / `TrackedRwLock` so runtime
//!   lockdep sees it — and the acquisition *order* written in the source
//!   must form a DAG even on paths no test drives.
//! * **Fault-hook robustness.** Every `CxlDevice` access may be vetoed
//!   by a `FaultHook`; `unwrap()` on the device path turns an injected
//!   fault into a panic, bypassing the recovery machinery under test.
//!
//! Before this crate those rules were enforced only dynamically, after a
//! violation had already shipped. `cxl-lint` enforces them at `ci.sh`
//! time, from a hand-rolled lexer (no `syn`/`quote` — the build
//! container has no network): see [`lexer`] for the token model,
//! [`engine`] for the rule catalog and suppression policy, [`lockgraph`]
//! for the static lock-class graph and its cross-check against runtime
//! lockdep, and [`config`] for `lint.toml`.
//!
//! Run it as `cargo run -p cxl-lint` (human diagnostics) or with
//! `--json` for the machine-readable report; DESIGN.md §12 is the
//! policy document.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod lockgraph;

pub use config::{Config, ConfigError};
pub use diag::{Report, Severity, Violation, JSON_SCHEMA_VERSION};
pub use engine::{lint_files, lint_workspace, SourceFile};
