//! `lint.toml` — committed lint configuration, parsed by hand.
//!
//! The subset of TOML the lint needs (and all this parser accepts):
//! `[table.names]`, `key = "string"`, `key = true|false`, and
//! `key = ["array", "of", "strings"]`. Comments start with `#`. Anything
//! else is a hard configuration error — a lint that silently ignored a
//! typoed rule table would be worse than no lint.

use std::collections::BTreeMap;
use std::fmt;

/// A configuration error, with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line in the config file.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// One parsed TOML value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TomlValue {
    /// `"a string"`.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// `["only", "string", "arrays"]`.
    StrArray(Vec<String>),
}

/// The lint configuration, resolved from `lint.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Directory globs (relative to the workspace root) whose `.rs` files
    /// are linted. Each entry is a literal path prefix; `crates/*/src`
    /// expands the single `*` over directory entries.
    pub roots: Vec<String>,
    /// Rule ids disabled wholesale (rarely used; prefer inline allows).
    pub disabled_rules: Vec<String>,
    /// Path prefixes whose modules are determinism-sensitive (they emit
    /// reports, benches, or traces, or feed structures that do):
    /// `HashMap`/`HashSet` are banned here in favor of `BTreeMap` /
    /// explicit sorting.
    pub deterministic_modules: Vec<String>,
    /// Path prefixes exempt from the raw-lock ban (the lockdep module
    /// itself — the tracker cannot track itself).
    pub raw_lock_exempt: Vec<String>,
    /// Path prefixes on the device data path, where `unwrap`/`expect`
    /// are banned (a `FaultHook` may veto any operation; panicking on a
    /// vetoed op would bypass the injected-fault cadence).
    pub device_path_modules: Vec<String>,
    /// Lock-class families with a declared intra-family acquisition
    /// order (ascending lexicographic suffix). Runtime edges inside such
    /// a family are checked against that order instead of the static
    /// graph; e.g. `cxl_mem.device.shard*`.
    pub ordered_families: Vec<String>,
}

impl Default for Config {
    /// The workspace defaults — mirrors the committed `lint.toml` so
    /// in-process tests need no file.
    fn default() -> Self {
        Config {
            roots: vec!["crates/*/src".to_string()],
            disabled_rules: Vec::new(),
            deterministic_modules: Vec::new(),
            raw_lock_exempt: Vec::new(),
            device_path_modules: Vec::new(),
            ordered_families: Vec::new(),
        }
    }
}

impl Config {
    /// Parses a `lint.toml` document.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] on any line the TOML subset does not accept, on
    /// unknown tables, or on unknown keys — configuration typos fail
    /// loudly.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let tables = parse_toml(text)?;
        let mut config = Config::default();
        for (line, table, key, value) in tables {
            let full = if table.is_empty() {
                key.clone()
            } else {
                format!("{table}.{key}")
            };
            let err = |message: String| ConfigError { line, message };
            let as_array = |value: &TomlValue| -> Result<Vec<String>, ConfigError> {
                match value {
                    TomlValue::StrArray(v) => Ok(v.clone()),
                    TomlValue::Str(s) => Ok(vec![s.clone()]),
                    TomlValue::Bool(_) => Err(ConfigError {
                        line,
                        message: format!("`{full}` expects a string array"),
                    }),
                }
            };
            match full.as_str() {
                "paths.roots" => config.roots = as_array(&value)?,
                "rules.disabled" => config.disabled_rules = as_array(&value)?,
                "rules.hash-iteration.modules" => config.deterministic_modules = as_array(&value)?,
                "rules.raw-lock.exempt" => config.raw_lock_exempt = as_array(&value)?,
                "rules.device-unwrap.modules" => config.device_path_modules = as_array(&value)?,
                "lock-order.ordered-families" => config.ordered_families = as_array(&value)?,
                _ => return Err(err(format!("unknown configuration key `{full}`"))),
            }
        }
        Ok(config)
    }
}

/// Parses the TOML subset into `(line, table, key, value)` entries.
#[allow(clippy::type_complexity)]
fn parse_toml(text: &str) -> Result<Vec<(u32, String, String, TomlValue)>, ConfigError> {
    let mut out = Vec::new();
    let mut table = String::new();
    for (i, raw) in text.lines().enumerate() {
        let line = (i + 1) as u32;
        let trimmed = strip_comment(raw).trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(ConfigError {
                    line,
                    message: "unterminated table header".to_string(),
                });
            };
            table = name.trim().to_string();
            continue;
        }
        let Some((key, value)) = trimmed.split_once('=') else {
            return Err(ConfigError {
                line,
                message: format!("expected `key = value`, got `{trimmed}`"),
            });
        };
        let key = key.trim().trim_matches('"').to_string();
        let value = parse_value(value.trim(), line)?;
        out.push((line, table.clone(), key, value));
    }
    Ok(out)
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(v: &str, line: u32) -> Result<TomlValue, ConfigError> {
    if v == "true" {
        return Ok(TomlValue::Bool(true));
    }
    if v == "false" {
        return Ok(TomlValue::Bool(false));
    }
    if let Some(s) = v.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
        return Ok(TomlValue::Str(s.to_string()));
    }
    if let Some(body) = v.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
        let mut items = Vec::new();
        for item in body.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue; // trailing comma
            }
            match item.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
                Some(s) => items.push(s.to_string()),
                None => {
                    return Err(ConfigError {
                        line,
                        message: format!("array items must be quoted strings, got `{item}`"),
                    })
                }
            }
        }
        return Ok(TomlValue::StrArray(items));
    }
    Err(ConfigError {
        line,
        message: format!("unsupported value `{v}` (strings, bools, and string arrays only)"),
    })
}

/// Keeps multi-line arrays working: the parser above is line-oriented, so
/// `Config::load_str` first joins continuation lines (an unclosed `[` on
/// a `key = [` line pulls following lines in until the matching `]`).
pub fn join_continuations(text: &str) -> String {
    let mut out = String::new();
    let mut pending = String::new();
    let mut open = false;
    for raw in text.lines() {
        let stripped = strip_comment(raw);
        if open {
            pending.push(' ');
            pending.push_str(stripped.trim());
            if stripped.contains(']') {
                out.push_str(&pending);
                out.push('\n');
                pending.clear();
                open = false;
            }
            continue;
        }
        if stripped.contains('=')
            && stripped.contains('[')
            && !stripped.contains(']')
            && !stripped.trim_start().starts_with('[')
        {
            pending = stripped.trim_end().to_string();
            open = true;
        } else {
            out.push_str(raw);
            out.push('\n');
        }
    }
    if !pending.is_empty() {
        out.push_str(&pending);
        out.push('\n');
    }
    out
}

impl Config {
    /// Parses a config, accepting multi-line arrays.
    ///
    /// # Errors
    ///
    /// See [`Config::parse`].
    pub fn load_str(text: &str) -> Result<Config, ConfigError> {
        Config::parse(&join_continuations(text))
    }
}

/// `true` if `path` (workspace-relative, `/`-separated) starts with any
/// of `prefixes`.
pub fn path_matches(path: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p.as_str()))
}

/// Expands a root glob like `crates/*/src` against the filesystem under
/// `base`, returning matching directories in sorted order. A root with
/// no `*` is returned as-is (if it exists).
pub fn expand_root(base: &std::path::Path, root: &str) -> Vec<std::path::PathBuf> {
    let mut out = Vec::new();
    match root.split_once('*') {
        None => {
            let p = base.join(root);
            if p.is_dir() {
                out.push(p);
            }
        }
        Some((before, after)) => {
            let before = before.trim_end_matches('/');
            let after = after.trim_start_matches('/');
            let Ok(entries) = std::fs::read_dir(base.join(before)) else {
                return out;
            };
            let mut names: Vec<_> = entries
                .filter_map(|e| e.ok().map(|e| e.file_name()))
                .collect();
            names.sort();
            for name in names {
                let candidate = base.join(before).join(&name).join(after);
                if candidate.is_dir() {
                    out.push(candidate);
                }
            }
        }
    }
    out
}

/// A map from line number to the rule allows declared on that line —
/// see `engine::collect_allows`.
pub type AllowMap = BTreeMap<u32, Vec<String>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_shape() {
        let cfg = Config::load_str(
            r#"
# comment
[paths]
roots = ["crates/*/src"]

[rules.hash-iteration]
modules = [
    "crates/bench/src",  # trailing comment
    "crates/node-os/src",
]

[rules.raw-lock]
exempt = ["crates/cxl-mem/src/lockdep.rs"]

[rules.device-unwrap]
modules = ["crates/cxl-mem/src/device.rs"]

[lock-order]
ordered-families = ["cxl_mem.device.shard*"]
"#,
        )
        .unwrap();
        assert_eq!(cfg.roots, vec!["crates/*/src"]);
        assert_eq!(
            cfg.deterministic_modules,
            vec!["crates/bench/src", "crates/node-os/src"]
        );
        assert_eq!(cfg.ordered_families, vec!["cxl_mem.device.shard*"]);
    }

    #[test]
    fn unknown_keys_fail_loudly() {
        let err = Config::load_str("[rules.hash-iteration]\nmoduels = [\"x\"]").unwrap_err();
        assert!(err.message.contains("unknown configuration key"));
    }
}
