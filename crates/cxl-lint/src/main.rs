//! The `cxl-lint` binary: lints the workspace and exits nonzero on any
//! error-severity finding. This is a hard CI gate (`ci.sh` runs it in
//! both feature states, human and `--json`, before the test suites).
//!
//! ```text
//! cxl-lint [--root DIR] [--config FILE] [--json] [--runtime-edges FILE]
//! ```
//!
//! * `--root DIR` — workspace root (default: the current directory).
//! * `--config FILE` — lint configuration (default: `<root>/lint.toml`).
//! * `--json` — emit the machine-readable report instead of human
//!   diagnostics (schema pinned by `cxl_lint::JSON_SCHEMA_VERSION`).
//! * `--runtime-edges FILE` — a runtime lockdep edge snapshot (one
//!   `held<TAB>acquired` pair per line, as printed by
//!   `cxl_mem::lockdep::lock_order_edges`); enables the
//!   static-vs-runtime cross-check and coverage-gap reporting.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

use cxl_lint::{lint_workspace, Config};

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("cxl-lint: {message}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut json = false;
    let mut runtime_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(next_value(&mut args, "--root")?),
            "--config" => config_path = Some(PathBuf::from(next_value(&mut args, "--config")?)),
            "--json" => json = true,
            "--runtime-edges" => {
                runtime_path = Some(PathBuf::from(next_value(&mut args, "--runtime-edges")?));
            }
            "--help" | "-h" => {
                println!(
                    "usage: cxl-lint [--root DIR] [--config FILE] [--json] [--runtime-edges FILE]"
                );
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }

    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let config_text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("cannot read {}: {e}", config_path.display()))?;
    let config = Config::load_str(&config_text).map_err(|e| e.to_string())?;

    let runtime_edges = match &runtime_path {
        None => None,
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            Some(parse_runtime_edges(&text)?)
        }
    };

    let report = lint_workspace(&root, &config, runtime_edges.as_deref())
        .map_err(|e| format!("walking {}: {e}", root.display()))?;

    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    Ok(report.is_clean())
}

fn next_value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}

/// Parses a runtime edge snapshot: one `held<TAB-or-space>acquired` pair
/// per line; blank lines and `#` comments are skipped.
fn parse_runtime_edges(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next(), parts.next()) {
            (Some(h), Some(a), None) => out.push((h.to_string(), a.to_string())),
            _ => {
                return Err(format!(
                    "runtime edge file line {}: expected `held acquired`, got `{line}`",
                    i + 1
                ))
            }
        }
    }
    Ok(out)
}
