//! Static-vs-runtime lockdep cross-check over the *real* workspace:
//! drive the device and store under the `check` feature so runtime
//! lockdep records actual `(held, acquired)` class edges, then lint the
//! committed source tree with those edges and assert the two graphs
//! agree — no static cycle, no contradiction, and the
//! `cxl_mem.device.regions → cxl_mem.device.shard*` ordering covered by
//! a runtime `shardNN` edge.
//!
//! Everything lives in one `#[test]` because runtime lockdep's edge
//! graph is process-global: a second test in this binary would see (and
//! have to filter) the first one's edges.

use std::path::Path;
use std::sync::Arc;

use cxl_lint::{lint_workspace, Config, Severity};
use cxl_mem::lockdep::{lock_order_edges, reset_lock_graph};
use cxl_mem::{CxlDevice, CxlPageId, NodeId, PageData};
use cxl_store::Store;
use simclock::SimTime;

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn runtime_lockdep_agrees_with_the_static_graph() {
    reset_lock_graph();

    // Drive the sharded device across enough pages to touch several
    // shards under the region-table lock, then the store's intern path
    // (store lock held over device batch calls).
    let device = Arc::new(CxlDevice::with_shards(256, 8));
    let region = device.create_region("lint-cross-check");
    let pages = device.alloc_batch(region, 64).expect("alloc");
    let writes: Vec<(CxlPageId, PageData)> = pages[..16]
        .iter()
        .copied()
        .zip((0..16u64).map(PageData::pattern))
        .collect();
    device.write_pages(&writes, NodeId(0)).expect("write");
    device.read_pages(&pages[..16], NodeId(0)).expect("read");
    device.free_batch(&pages).expect("free");

    let store = Store::new(device.clone());
    let image = store.begin_image("img", NodeId(0), 0, SimTime::ZERO);
    let payload: Vec<PageData> = (0..32u64).map(PageData::pattern).collect();
    store
        .intern_pages(image, &payload, NodeId(0))
        .expect("intern");
    let meta = device.create_region("lint-cross-check:meta");
    store.commit_image(image, meta).expect("image is pending");
    store.release_image(image).expect("image is committed");

    let runtime: Vec<(String, String)> = lock_order_edges()
        .into_iter()
        .map(|(h, a)| (h.to_string(), a.to_string()))
        .collect();
    assert!(
        !runtime.is_empty(),
        "the check feature must be on for this test (dev-dep enables it)"
    );
    // The driven workload must have taken a shard lock under the region
    // table, or the cross-check below proves nothing.
    assert!(
        runtime
            .iter()
            .any(|(h, a)| h == "cxl_mem.device.regions" && a.starts_with("cxl_mem.device.shard")),
        "runtime edges: {runtime:?}"
    );

    // Lint the committed tree against those runtime edges.
    let root = workspace_root();
    let config_text = std::fs::read_to_string(root.join("lint.toml")).expect("committed lint.toml");
    let config = Config::load_str(&config_text).expect("lint.toml parses");
    let report = lint_workspace(root, &config, Some(&runtime)).expect("walk workspace");

    // No static cycle, no static/runtime contradiction — on the real
    // tree, with real edges.
    let errors: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.severity == Severity::Error)
        .collect();
    assert!(errors.is_empty(), "workspace must lint clean: {errors:?}");

    // The statically extracted regions → shard* ordering is exactly what
    // runtime lockdep observed (it must be covered, not a gap).
    assert!(
        report
            .lock_edges
            .iter()
            .any(|(h, a, _, _)| h == "cxl_mem.device.regions" && a == "cxl_mem.device.shard*"),
        "static edges: {:?}",
        report.lock_edges
    );
    assert!(
        !report
            .coverage_gaps
            .iter()
            .any(|(h, a)| h == "cxl_mem.device.regions" && a == "cxl_mem.device.shard*"),
        "regions → shard* was driven above, must not be a coverage gap: {:?}",
        report.coverage_gaps
    );

    // And a fabricated descending shard edge — the discipline the device
    // must never exhibit — is flagged as a contradiction.
    let mut poisoned = runtime.clone();
    poisoned.push((
        "cxl_mem.device.shard07".to_string(),
        "cxl_mem.device.shard03".to_string(),
    ));
    let report = lint_workspace(root, &config, Some(&poisoned)).expect("walk workspace");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.rule == "lock-order-contradiction"),
        "descending shard edge must contradict the declared family order"
    );
}
