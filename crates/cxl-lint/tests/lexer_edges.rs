//! Lexer edge cases the rule engine depends on: raw strings at any hash
//! depth, nested block comments, lifetimes vs. char literals, raw
//! identifiers, and byte strings. A mislexed corner here turns into a
//! false positive (flagging `HashMap` inside a string) or a false
//! negative (missing live code after a comment), so each corner is
//! pinned by name.

use cxl_lint::lexer::{lex, TokKind};

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .into_iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text)
        .collect()
}

fn kinds(src: &str) -> Vec<TokKind> {
    lex(src).into_iter().map(|t| t.kind).collect()
}

#[test]
fn raw_strings_any_hash_depth_hide_contents() {
    assert_eq!(idents(r###"let a = r"HashMap";"###), vec!["let", "a"]);
    assert_eq!(idents(r###"let a = r#"HashMap"#;"###), vec!["let", "a"]);
    assert_eq!(
        idents("let a = r##\"Instant \"# still inside\"##;"),
        vec!["let", "a"]
    );
}

#[test]
fn raw_string_body_is_preserved_verbatim() {
    let toks = lex(r###"r#"cxl_mem.device.regions"#"###);
    assert_eq!(toks.len(), 1);
    assert_eq!(toks[0].kind, TokKind::Str);
    assert_eq!(toks[0].text, "cxl_mem.device.regions");
}

#[test]
fn byte_strings_and_byte_chars() {
    assert_eq!(idents(r#"let a = b"HashMap";"#), vec!["let", "a"]);
    assert_eq!(idents(r##"let a = br#"HashMap"#;"##), vec!["let", "a"]);
    // b'x' is a char literal, and the escape form doesn't leak tokens.
    assert_eq!(
        idents(r#"let a = b'x'; let c = b'\'';"#),
        vec!["let", "a", "let", "c"]
    );
}

#[test]
fn escaped_quote_does_not_end_a_plain_string() {
    let toks = lex(r#""with \" quote" HashMap"#);
    assert_eq!(toks[0].kind, TokKind::Str);
    assert_eq!(toks[0].text, r#"with \" quote"#);
    assert!(toks[1].is_ident("HashMap"));
}

#[test]
fn nested_block_comments_resurface_at_the_right_place() {
    // A naive scanner would end the comment at the first `*/` and lex
    // `HashMap` as live code.
    let src = "/* outer /* HashMap inner */ still comment */ Instant";
    let toks = lex(src);
    assert_eq!(toks[0].kind, TokKind::BlockComment);
    assert!(toks[1].is_ident("Instant"));
    assert_eq!(idents(src), vec!["Instant"]);
}

#[test]
fn unterminated_block_comment_consumes_to_eof() {
    let toks = lex("/* never closed HashMap");
    assert_eq!(toks.len(), 1);
    assert_eq!(toks[0].kind, TokKind::BlockComment);
}

#[test]
fn lifetimes_are_not_char_literals() {
    let toks = lex("fn f<'a>(x: &'a str) -> &'static str { x }");
    let lifetimes: Vec<String> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| t.text.clone())
        .collect();
    assert_eq!(lifetimes, vec!["a", "a", "static"]);
    assert!(!toks.iter().any(|t| t.kind == TokKind::Char));
}

#[test]
fn char_literals_are_not_lifetimes() {
    let toks = lex(r#"let c = 'a'; let q = '\''; let n = '\n'; let p = '(';"#);
    let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
    assert_eq!(chars, 4);
    assert!(!toks.iter().any(|t| t.kind == TokKind::Lifetime));
}

#[test]
fn raw_identifiers_normalize_to_bare_names() {
    // r#fn is an identifier named `fn`, not a raw string start.
    assert_eq!(idents("let r#fn = 1; r#ident"), vec!["let", "fn", "ident"]);
    // And a bare `r` variable stays an ordinary identifier.
    assert_eq!(idents("let r = 1;"), vec!["let", "r"]);
}

#[test]
fn numbers_do_not_swallow_ranges_or_method_calls() {
    // `0..9` must stay three tokens and `1.max(2)` must keep the dot.
    let k = kinds("0..9");
    assert_eq!(
        k,
        vec![TokKind::Num, TokKind::Punct, TokKind::Punct, TokKind::Num]
    );
    assert!(lex("1.max(2)").iter().any(|t| t.is_ident("max")));
    // But a real float is one token.
    assert_eq!(kinds("1.5"), vec![TokKind::Num]);
}

#[test]
fn line_numbers_survive_multiline_tokens() {
    let src = "a\n/* two\nlines */\nb\nr#\"raw\nstring\"#\nc";
    let toks = lex(src);
    let a = toks.iter().find(|t| t.is_ident("a")).unwrap();
    let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
    let c = toks.iter().find(|t| t.is_ident("c")).unwrap();
    assert_eq!((a.line, b.line, c.line), (1, 4, 7));
}

#[test]
fn lexer_is_total_on_garbage() {
    // Malformed input degrades to tokens, never panics.
    for src in ["\"unterminated", "r#\"open", "'", "b'", "#!@%^&", "'\\"] {
        let _ = lex(src);
    }
}
