//! JSON schema round-trip: the `--json` report must parse with the
//! workspace's own JSON parser (`cxl_telemetry::Json`) and every field
//! must survive the trip. `ci.sh` consumes this document, so the schema
//! is pinned — bump [`cxl_lint::JSON_SCHEMA_VERSION`] on any shape
//! change.

use cxl_lint::{lint_files, Config, JSON_SCHEMA_VERSION};
use cxl_telemetry::Json;

fn seeded_report() -> cxl_lint::Report {
    let config = Config::load_str(
        r#"
[paths]
roots = ["crates/*/src"]
[rules.hash-iteration]
modules = ["crates/det/src"]
"#,
    )
    .unwrap();
    let src = r#"
use std::collections::HashMap;
fn mk() { let a = TrackedMutex::new("j.a", ()); let b = TrackedMutex::new("j.b", ()); }
fn ab(a: &TrackedMutex<()>, b: &TrackedMutex<()>) { let ga = a.lock(); let gb = b.lock(); }
fn weird() { let _s = "quote \" and\nnewline"; }
"#;
    let runtime: Vec<(String, String)> = Vec::new();
    lint_files(
        &[("crates/det/src/lib.rs".to_string(), src.to_string())],
        &config,
        Some(&runtime),
    )
}

#[test]
fn report_round_trips_through_the_telemetry_parser() {
    let report = seeded_report();
    let doc = Json::parse(&report.render_json()).expect("report must be valid JSON");

    assert_eq!(
        doc.get("schema_version").and_then(Json::as_u64),
        Some(u64::from(JSON_SCHEMA_VERSION))
    );
    assert_eq!(doc.get("files_scanned").and_then(Json::as_u64), Some(1));
    assert_eq!(doc.get("clean"), Some(&Json::Bool(report.is_clean())));

    // Every violation survives with all its fields.
    let violations = doc.get("violations").and_then(Json::as_arr).unwrap();
    assert_eq!(violations.len(), report.violations.len());
    assert!(!violations.is_empty(), "fixture must seed violations");
    for (json, v) in violations.iter().zip(&report.violations) {
        assert_eq!(json.get("rule").and_then(Json::as_str), Some(v.rule));
        assert_eq!(
            json.get("file").and_then(Json::as_str),
            Some(v.file.as_str())
        );
        assert_eq!(
            json.get("line").and_then(Json::as_u64),
            Some(u64::from(v.line))
        );
        assert_eq!(
            json.get("message").and_then(Json::as_str),
            Some(v.message.as_str())
        );
        assert!(matches!(
            json.get("severity").and_then(Json::as_str),
            Some("error" | "warning")
        ));
    }

    // The lock graph and coverage gaps survive too.
    let edges = doc.get("lock_graph").and_then(Json::as_arr).unwrap();
    assert_eq!(edges.len(), report.lock_edges.len());
    assert!(!edges.is_empty(), "fixture must extract an edge");
    for (json, (held, acquired, file, line)) in edges.iter().zip(&report.lock_edges) {
        assert_eq!(json.get("held").and_then(Json::as_str), Some(held.as_str()));
        assert_eq!(
            json.get("acquired").and_then(Json::as_str),
            Some(acquired.as_str())
        );
        assert_eq!(json.get("file").and_then(Json::as_str), Some(file.as_str()));
        assert_eq!(
            json.get("line").and_then(Json::as_u64),
            Some(u64::from(*line))
        );
    }
    let gaps = doc.get("coverage_gaps").and_then(Json::as_arr).unwrap();
    assert_eq!(gaps.len(), report.coverage_gaps.len());
    assert!(
        !gaps.is_empty(),
        "no runtime edges were supplied, so the static edge is a gap"
    );
}

#[test]
fn clean_report_parses_with_empty_arrays() {
    let config = Config::default();
    let report = lint_files(
        &[(
            "crates/x/src/lib.rs".to_string(),
            "pub fn fine() {}\n".to_string(),
        )],
        &config,
        None,
    );
    let doc = Json::parse(&report.render_json()).unwrap();
    assert_eq!(doc.get("clean"), Some(&Json::Bool(true)));
    assert_eq!(
        doc.get("violations")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(0)
    );
    assert_eq!(
        doc.get("lock_graph")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(0)
    );
    assert_eq!(
        doc.get("coverage_gaps")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(0)
    );
}

#[test]
fn messages_with_quotes_and_newlines_stay_intact() {
    // Force a message-bearing path through real escaping: a violation in
    // a file whose path needs escaping.
    let config = Config::default();
    let report = lint_files(
        &[(
            "crates/x/src/we\"ird.rs".to_string(),
            "use std::time::Instant;\n".to_string(),
        )],
        &config,
        None,
    );
    let doc = Json::parse(&report.render_json()).unwrap();
    let violations = doc.get("violations").and_then(Json::as_arr).unwrap();
    assert_eq!(
        violations[0].get("file").and_then(Json::as_str),
        Some("crates/x/src/we\"ird.rs")
    );
}
