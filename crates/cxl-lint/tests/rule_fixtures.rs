//! One seeded-violation fixture per rule: each fixture contains exactly
//! one planted violation, and the test asserts the engine reports it
//! with the right rule id — and that the `cxl-lint` binary exits
//! nonzero on it. A clean fixture pins exit code 0, and a broken config
//! pins exit code 2.

use std::path::PathBuf;
use std::process::Command;

use cxl_lint::{lint_files, Config, Severity};

/// The workspace-shaped config the fixtures lint under.
fn config() -> Config {
    Config::load_str(
        r#"
[paths]
roots = ["crates/*/src"]
[rules.hash-iteration]
modules = ["crates/det/src"]
[rules.raw-lock]
exempt = ["crates/det/src/lockdep.rs"]
[rules.device-unwrap]
modules = ["crates/det/src/device.rs"]
[lock-order]
ordered-families = ["dev.shard*"]
"#,
    )
    .unwrap()
}

fn lint_one(path: &str, src: &str) -> Vec<(&'static str, u32)> {
    let report = lint_files(&[(path.to_string(), src.to_string())], &config(), None);
    report
        .violations
        .iter()
        .filter(|v| v.severity == Severity::Error)
        .map(|v| (v.rule, v.line))
        .collect()
}

#[test]
fn wall_clock_fixture() {
    let hits = lint_one(
        "crates/det/src/lib.rs",
        "use std::time::Instant;\nfn f() { let _t = Instant::now(); }\n",
    );
    assert!(!hits.is_empty());
    assert!(
        hits.iter().all(|(rule, _)| *rule == "wall-clock"),
        "{hits:?}"
    );
    assert_eq!(hits[0].1, 1);
}

#[test]
fn hash_iteration_fixture() {
    let src = "use std::collections::HashMap;\n";
    assert_eq!(
        lint_one("crates/det/src/lib.rs", src),
        vec![("hash-iteration", 1)]
    );
    // The same source outside a determinism-sensitive module is fine.
    assert!(lint_one("crates/other/src/lib.rs", src).is_empty());
}

#[test]
fn raw_lock_fixture() {
    let src = "use std::sync::Mutex;\nstatic M: Mutex<u32> = Mutex::new(0);\n";
    let hits = lint_one("crates/det/src/lib.rs", src);
    assert!(!hits.is_empty());
    assert!(hits.iter().all(|(rule, _)| *rule == "raw-lock"), "{hits:?}");
    // The lockdep module itself is exempt.
    assert!(lint_one("crates/det/src/lockdep.rs", src).is_empty());
}

#[test]
fn device_unwrap_fixture() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert_eq!(
        lint_one("crates/det/src/device.rs", src),
        vec![("device-unwrap", 1)]
    );
    // Test code on the device path is exempt.
    let test_src = "#[cfg(test)]\nmod tests {\n    fn f(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
    assert!(lint_one("crates/det/src/device.rs", test_src).is_empty());
}

#[test]
fn non_exhaustive_error_fixture() {
    let src = "pub enum StoreError { Full }\n";
    assert_eq!(
        lint_one("crates/det/src/lib.rs", src),
        vec![("non-exhaustive-error", 1)]
    );
    let annotated = "#[non_exhaustive]\npub enum StoreError { Full }\n";
    assert!(lint_one("crates/det/src/lib.rs", annotated).is_empty());
    // Private enums may be matched exhaustively within their crate.
    assert!(lint_one("crates/det/src/lib.rs", "enum StoreError { Full }\n").is_empty());
}

#[test]
fn bad_allow_fixture() {
    // An allow without a justification is itself a violation...
    let src = "// cxl-lint: allow(raw-lock)\nuse std::sync::Mutex;\n";
    let hits = lint_one("crates/det/src/lib.rs", src);
    assert!(
        hits.iter().any(|(rule, _)| *rule == "bad-allow"),
        "{hits:?}"
    );
    // ...and does not suppress the underlying finding.
    assert!(hits.iter().any(|(rule, _)| *rule == "raw-lock"), "{hits:?}");
}

#[test]
fn justified_allow_suppresses() {
    let above =
        "// cxl-lint: allow(raw-lock): fixture proves suppression works\nuse std::sync::Mutex;\n";
    assert!(lint_one("crates/det/src/lib.rs", above).is_empty());
    let same_line =
        "use std::sync::Mutex; // cxl-lint: allow(raw-lock): fixture proves suppression works\n";
    assert!(lint_one("crates/det/src/lib.rs", same_line).is_empty());
    // An allow for one rule does not silence another.
    let wrong_rule =
        "// cxl-lint: allow(wall-clock): wrong rule on purpose\nuse std::sync::Mutex;\n";
    assert_eq!(
        lint_one("crates/det/src/lib.rs", wrong_rule),
        vec![("raw-lock", 2)]
    );
}

#[test]
fn lock_cycle_fixture() {
    let src = r#"
fn mk() { let a = TrackedMutex::new("cy.a", ()); let b = TrackedMutex::new("cy.b", ()); }
fn ab(a: &TrackedMutex<()>, b: &TrackedMutex<()>) { let ga = a.lock(); let gb = b.lock(); }
fn ba(a: &TrackedMutex<()>, b: &TrackedMutex<()>) { let gb = b.lock(); let ga = a.lock(); }
"#;
    let hits = lint_one("crates/det/src/lib.rs", src);
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].0, "lock-cycle");
}

#[test]
fn lock_order_contradiction_fixture() {
    let src = r#"
fn mk() { let a = TrackedMutex::new("ct.a", ()); let b = TrackedMutex::new("ct.b", ()); }
fn ab(a: &TrackedMutex<()>, b: &TrackedMutex<()>) { let ga = a.lock(); let gb = b.lock(); }
"#;
    let runtime = vec![
        ("ct.b".to_string(), "ct.a".to_string()),
        ("dev.shard07".to_string(), "dev.shard03".to_string()),
    ];
    let report = lint_files(
        &[("crates/det/src/lib.rs".to_string(), src.to_string())],
        &config(),
        Some(&runtime),
    );
    let rules: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
    assert_eq!(
        rules
            .iter()
            .filter(|r| **r == "lock-order-contradiction")
            .count(),
        2,
        "{:?}",
        report.violations
    );
}

#[test]
fn lock_coverage_gap_is_a_warning_not_an_error() {
    let src = r#"
fn mk() { let a = TrackedMutex::new("cov.a", ()); let b = TrackedMutex::new("cov.b", ()); }
fn ab(a: &TrackedMutex<()>, b: &TrackedMutex<()>) { let ga = a.lock(); let gb = b.lock(); }
"#;
    let runtime: Vec<(String, String)> = Vec::new();
    let report = lint_files(
        &[("crates/det/src/lib.rs".to_string(), src.to_string())],
        &config(),
        Some(&runtime),
    );
    assert!(report.is_clean(), "{:?}", report.violations);
    assert_eq!(
        report.coverage_gaps,
        vec![("cov.a".to_string(), "cov.b".to_string())]
    );
}

// ---------------------------------------------------------------------
// Binary exit codes, over on-disk fixture workspaces
// ---------------------------------------------------------------------

struct FixtureDir(PathBuf);

impl FixtureDir {
    fn new(name: &str, lib_rs: &str, lint_toml: &str) -> FixtureDir {
        let root =
            std::env::temp_dir().join(format!("cxl-lint-fixture-{}-{name}", std::process::id()));
        let src = root.join("crates/det/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(root.join("lint.toml"), lint_toml).unwrap();
        std::fs::write(src.join("lib.rs"), lib_rs).unwrap();
        FixtureDir(root)
    }
}

impl Drop for FixtureDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const MINIMAL_TOML: &str = "[paths]\nroots = [\"crates/*/src\"]\n";

fn run_lint(root: &std::path::Path, extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_cxl-lint"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn cxl-lint")
}

#[test]
fn binary_exits_zero_on_a_clean_tree() {
    let fx = FixtureDir::new("clean", "pub fn fine() {}\n", MINIMAL_TOML);
    let out = run_lint(&fx.0, &[]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn binary_exits_one_on_a_seeded_violation_and_names_the_rule() {
    let fx = FixtureDir::new("dirty", "use std::time::Instant;\n", MINIMAL_TOML);
    let out = run_lint(&fx.0, &[]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[wall-clock]"), "{stdout}");

    // Same tree under --json: still exit 1, and the document carries the
    // rule id machine-readably.
    let out = run_lint(&fx.0, &["--json"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"rule\": \"wall-clock\""), "{stdout}");
    assert!(stdout.contains("\"clean\": false"), "{stdout}");
}

#[test]
fn binary_exits_two_on_a_broken_config() {
    let fx = FixtureDir::new(
        "badcfg",
        "pub fn fine() {}\n",
        "[rules.hash-iteration]\nmoduels = [\"typo\"]\n",
    );
    let out = run_lint(&fx.0, &[]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown configuration key"), "{stderr}");
}

#[test]
fn binary_exits_two_on_a_missing_config() {
    let fx = FixtureDir::new("nocfg", "pub fn fine() {}\n", MINIMAL_TOML);
    std::fs::remove_file(fx.0.join("lint.toml")).unwrap();
    let out = run_lint(&fx.0, &[]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}
