//! Deterministic CXL fabric model: devices behind a switch, with
//! bandwidth contention.
//!
//! The flat latency model in [`simclock`] charges the same 391 ns round
//! trip no matter how much traffic is in flight; real CXL fabrics
//! saturate per-port and per-uplink bandwidth first (CXLMemSim,
//! CXL-DMSim). This crate adds the missing layer:
//!
//! * [`FabricTopology`] — one or more CXL devices behind a switch. Each
//!   device exposes `ports_per_device` switch ports (its page-pool
//!   shards map onto ports modulo the port count) plus one uplink into
//!   the switch whose capacity is the sum of its port bandwidths.
//! * **Sliding-window credit accounting** — every charged transfer
//!   records its bytes against the involved ports and the device's
//!   uplink in a bucketed window of virtual time; bytes age out as the
//!   clock advances, so a long-idle fabric is indistinguishable from a
//!   fresh one.
//! * **Queueing delay** — [`simclock::QueueingCurve`] converts the
//!   bytes a transfer *finds in flight* (never its own) into extra
//!   latency: the port backlog's drain time blown up by the standard
//!   convex `1/(1-u)` factor. An isolated transfer finds an empty
//!   window and pays **exactly zero**, which is what keeps the default
//!   single-device, zero-load configuration bit-identical to the flat
//!   calibrated model — the six committed BENCH baselines do not move.
//! * [`PlacementPolicy`] / [`DevicePool`] — stripe vs. locality
//!   placement of checkpoint images across the pool's devices, used by
//!   `cxl-store` allocation and the porter.
//!
//! The topology implements [`cxl_mem::FabricLink`], so it attaches to a
//! [`cxl_mem::CxlDevice`] the same way a fault hook does: one relaxed
//! atomic load when absent, and `core`'s checkpoint/restore costing
//! charges it without a dependency on this crate. All state lives under
//! a single [`TrackedMutex`] (class `cxl_fabric.switch`) that is a leaf
//! in the lock order — nothing inside it calls back into the device —
//! and all arithmetic is straight-line integer/`f64` work on explicit
//! inputs, so same-seed runs are bit-identical whether or not a
//! telemetry session is armed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

use cxl_mem::lockdep::TrackedMutex;
use cxl_mem::{CxlDevice, FabricLink};
use serde::{Deserialize, Serialize};
use simclock::{QueueingCurve, SimDuration, SimTime};

/// Buckets per sliding window: finer buckets age traffic out more
/// smoothly at the cost of a little state. Eight matches the device's
/// default shard count and keeps the window array cache-resident.
const WINDOW_BUCKETS: u64 = 8;

/// How checkpoint images are spread across the devices of a
/// [`DevicePool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// All images of one function land on the same device (chosen by a
    /// deterministic hash of the function's identity). Maximizes
    /// template-page dedup inside `cxl-store` — cross-image sharing
    /// only works within one device — at the price of hot functions
    /// concentrating their traffic on one uplink.
    #[default]
    Locality,
    /// Consecutive images round-robin across devices. Spreads load over
    /// every uplink, at the price of duplicating template pages into
    /// each device's content index.
    Stripe,
}

impl PlacementPolicy {
    /// Short lowercase name, used in counter names and reports.
    pub fn name(self) -> &'static str {
        match self {
            PlacementPolicy::Locality => "locality",
            PlacementPolicy::Stripe => "stripe",
        }
    }
}

/// Shape and calibration of a [`FabricTopology`].
///
/// The default — one device, eight ports, streaming-write bandwidth per
/// port, no background load — is the configuration under which the
/// fabric charges exactly zero extra latency to an isolated transfer,
/// keeping the flat 391 ns model intact.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricConfig {
    /// Devices behind the switch (≥ 1).
    pub devices: u32,
    /// Switch ports per device (≥ 1); device shards map onto ports
    /// modulo this count.
    pub ports_per_device: u32,
    /// Drain bandwidth of one port, in bytes per virtual nanosecond.
    /// The default matches the calibrated model's streaming CXL write
    /// bandwidth (8 B/ns), so one port at full tilt is one busy bank.
    pub link_bytes_per_ns: f64,
    /// Width of the sliding accounting window in virtual nanoseconds.
    pub window_ns: u64,
    /// Synthetic offered load from traffic outside the simulation, in
    /// permille of each link's window capacity (0 = idle fabric,
    /// 900 = near saturation). Added to the in-flight bytes every
    /// charge sees, on ports and uplinks alike.
    pub background_load_permille: u32,
    /// How [`DevicePool::place`] spreads images across devices.
    pub placement: PlacementPolicy,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            devices: 1,
            ports_per_device: 8,
            link_bytes_per_ns: 8.0,
            window_ns: 1_000_000,
            background_load_permille: 0,
            placement: PlacementPolicy::Locality,
        }
    }
}

/// Lifetime accounting for one [`FabricTopology`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Non-empty transfers charged.
    pub transfers: u64,
    /// Total bytes recorded against ports (uplink bytes mirror these).
    pub charged_bytes: u64,
    /// Sum of all queueing delays returned.
    pub total_queue_delay: SimDuration,
    /// Largest single queueing delay returned.
    pub max_queue_delay: SimDuration,
}

/// One link's bucketed sliding window of recorded bytes.
#[derive(Debug, Clone, Default)]
struct Window {
    /// Bytes per bucket, indexed by `epoch % WINDOW_BUCKETS`.
    buckets: [u64; WINDOW_BUCKETS as usize],
    /// Epoch (bucket index in absolute time) the window was last
    /// advanced to; buckets older than `WINDOW_BUCKETS` epochs are
    /// stale and zeroed on advance.
    epoch: u64,
}

impl Window {
    /// Moves the window forward to `epoch`, retiring stale buckets.
    fn advance(&mut self, epoch: u64) {
        if epoch <= self.epoch {
            return;
        }
        let steps = (epoch - self.epoch).min(WINDOW_BUCKETS);
        for i in 1..=steps {
            self.buckets[((self.epoch + i) % WINDOW_BUCKETS) as usize] = 0;
        }
        self.epoch = epoch;
    }

    /// Records bytes into the current bucket.
    fn add(&mut self, bytes: u64) {
        self.buckets[(self.epoch % WINDOW_BUCKETS) as usize] += bytes;
    }

    /// Bytes still in flight inside the window.
    fn inflight(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// Mutable switch state, all under one leaf lock.
#[derive(Debug)]
struct SwitchState {
    /// Monotone virtual-time cursor: per-node clocks may disagree, so
    /// the switch clamps every charge time to the latest it has seen —
    /// windows only ever move forward.
    cursor_ns: u64,
    /// Per-port windows, indexed `device * ports_per_device + port`.
    ports: Vec<Window>,
    /// Per-device uplink windows.
    uplinks: Vec<Window>,
    stats: FabricStats,
}

/// A switch with one or more CXL devices attached: the stateful half of
/// the fabric model. See the crate docs for the accounting scheme.
#[derive(Debug)]
pub struct FabricTopology {
    config: FabricConfig,
    port_curve: QueueingCurve,
    uplink_curve: QueueingCurve,
    /// Virtual nanoseconds per window bucket.
    bucket_ns: u64,
    state: TrackedMutex<SwitchState>,
}

impl FabricTopology {
    /// Builds a topology for `config`.
    ///
    /// # Panics
    /// If `devices` or `ports_per_device` is zero, the bandwidth is not
    /// strictly positive and finite, the window is narrower than
    /// [`WINDOW_BUCKETS`] ns, or the background load exceeds 1000 ‰.
    pub fn new(config: FabricConfig) -> Self {
        assert!(config.devices >= 1, "fabric needs at least one device");
        assert!(
            config.ports_per_device >= 1,
            "fabric devices need at least one port"
        );
        assert!(
            config.window_ns >= WINDOW_BUCKETS,
            "fabric window must cover at least {WINDOW_BUCKETS} ns"
        );
        assert!(
            config.background_load_permille <= 1000,
            "background load is a permille fraction of capacity"
        );
        let port_curve = QueueingCurve::new(config.link_bytes_per_ns, config.window_ns);
        let uplink_curve = QueueingCurve::new(
            config.link_bytes_per_ns * f64::from(config.ports_per_device),
            config.window_ns,
        );
        let ports = (config.devices * config.ports_per_device) as usize;
        FabricTopology {
            config,
            port_curve,
            uplink_curve,
            bucket_ns: (config.window_ns / WINDOW_BUCKETS).max(1),
            state: TrackedMutex::new(
                "cxl_fabric.switch",
                SwitchState {
                    cursor_ns: 0,
                    ports: vec![Window::default(); ports],
                    uplinks: vec![Window::default(); config.devices as usize],
                    stats: FabricStats::default(),
                },
            ),
        }
    }

    /// The configuration this topology was built with.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// The queueing curve of one switch port.
    pub fn port_curve(&self) -> QueueingCurve {
        self.port_curve
    }

    /// Lifetime accounting snapshot.
    pub fn stats(&self) -> FabricStats {
        self.state.lock().stats.clone()
    }

    /// Synthetic in-flight bytes one port sees from background load.
    fn background_port_bytes(&self) -> u64 {
        self.port_curve.capacity_bytes() / 1000 * u64::from(self.config.background_load_permille)
    }

    /// Synthetic in-flight bytes one uplink sees from background load.
    fn background_uplink_bytes(&self) -> u64 {
        self.uplink_curve.capacity_bytes() / 1000 * u64::from(self.config.background_load_permille)
    }

    /// Current utilization of one port in permille of window capacity
    /// (background load included), for tests and dashboards.
    pub fn port_utilization_permille(&self, device: u32, port: u32) -> u64 {
        let idx = (device * self.config.ports_per_device + port) as usize;
        let st = self.state.lock();
        let inflight = st.ports[idx].inflight() + self.background_port_bytes();
        inflight.saturating_mul(1000) / self.port_curve.capacity_bytes().max(1)
    }

    /// Charges one transfer: computes the delay it finds, then records
    /// its bytes. See [`FabricLink::charge_transfer`] for the contract.
    fn charge(&self, device: u32, now: SimTime, port_bytes: &[u64]) -> SimDuration {
        let total: u64 = port_bytes.iter().sum();
        if total == 0 {
            return SimDuration::ZERO;
        }
        let device = device.min(self.config.devices - 1);
        let ports = self.config.ports_per_device;
        // Fold shard byte counts onto switch ports (shard i → port i mod
        // ports). Fixed-size scratch, index order — deterministic.
        let mut folded = vec![0u64; ports as usize];
        for (shard, &bytes) in port_bytes.iter().enumerate() {
            folded[shard % ports as usize] += bytes;
        }

        let mut st = self.state.lock();
        let cursor = st.cursor_ns.max(now.as_nanos());
        st.cursor_ns = cursor;
        let epoch = cursor / self.bucket_ns;

        // Delay first — a transfer queues behind what is already in
        // flight (plus synthetic background load), never behind itself.
        let bg_port = self.background_port_bytes();
        let base = (device * ports) as usize;
        let mut delay = SimDuration::ZERO;
        for (port, &bytes) in folded.iter().enumerate() {
            if bytes == 0 {
                continue;
            }
            let window = &mut st.ports[base + port];
            window.advance(epoch);
            delay = delay.max(self.port_curve.delay(window.inflight() + bg_port));
        }
        let uplink = &mut st.uplinks[device as usize];
        uplink.advance(epoch);
        delay += self
            .uplink_curve
            .delay(uplink.inflight() + self.background_uplink_bytes());

        // Then record, so later transfers see this one.
        for (port, &bytes) in folded.iter().enumerate() {
            if bytes > 0 {
                st.ports[base + port].add(bytes);
            }
        }
        st.uplinks[device as usize].add(total);

        st.stats.transfers += 1;
        st.stats.charged_bytes += total;
        st.stats.total_queue_delay += delay;
        st.stats.max_queue_delay = st.stats.max_queue_delay.max(delay);

        // Telemetry last, still under the lock so gauge snapshots are
        // consistent; pure observation — armed runs stay bit-identical.
        if cxl_telemetry::is_armed() {
            cxl_telemetry::counter_add("cxl_fabric", "bytes", Some(device), total);
            cxl_telemetry::timer_record("cxl_fabric", "queue.delay", Some(device), delay);
            let capacity = self.port_curve.capacity_bytes().max(1);
            for (port, &bytes) in folded.iter().enumerate() {
                if bytes == 0 {
                    continue;
                }
                let inflight = st.ports[base + port].inflight() + bg_port;
                let permille = inflight.saturating_mul(1000) / capacity;
                let global_port = u32::try_from(base + port).unwrap_or(u32::MAX);
                cxl_telemetry::gauge_set(
                    "cxl_fabric",
                    "port.util_permille",
                    Some(global_port),
                    i64::try_from(permille).unwrap_or(i64::MAX),
                );
            }
        }
        delay
    }
}

impl FabricLink for FabricTopology {
    fn charge_transfer(&self, device: u32, now: SimTime, port_bytes: &[u64]) -> SimDuration {
        self.charge(device, now, port_bytes)
    }
}

/// Deterministic 64-bit mix (splitmix64 finalizer) for locality
/// placement — stable across platforms and runs, no `RandomState`.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A pool of CXL devices attached to one shared [`FabricTopology`],
/// plus the placement policy that decides which device a new checkpoint
/// image lands on.
#[derive(Debug, Clone)]
pub struct DevicePool {
    topology: Arc<FabricTopology>,
    devices: Vec<Arc<CxlDevice>>,
}

impl DevicePool {
    /// Wires `devices` onto `topology` (device `i` becomes fabric
    /// device `i`) and returns the pool.
    ///
    /// # Panics
    /// If the device count does not match the topology's configuration.
    pub fn attach(topology: Arc<FabricTopology>, devices: Vec<Arc<CxlDevice>>) -> Self {
        assert_eq!(
            devices.len(),
            topology.config.devices as usize,
            "pool size must match FabricConfig::devices"
        );
        for (i, device) in devices.iter().enumerate() {
            let link: Arc<dyn FabricLink> = topology.clone();
            device.attach_fabric(Some((link, u32::try_from(i).unwrap_or(u32::MAX))));
        }
        DevicePool { topology, devices }
    }

    /// The shared topology.
    pub fn topology(&self) -> &Arc<FabricTopology> {
        &self.topology
    }

    /// Number of devices in the pool.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// `true` if the pool has no devices (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The `index`-th device.
    pub fn device(&self, index: usize) -> &Arc<CxlDevice> {
        &self.devices[index]
    }

    /// Picks the device for the `nth` image of the function identified
    /// by `function_seed`, under the pool's configured policy:
    /// locality hashes the function identity (all its images share a
    /// device), stripe round-robins on `nth`.
    pub fn place(&self, function_seed: u64, nth: u64) -> usize {
        self.place_with(self.topology.config.placement, function_seed, nth)
    }

    /// [`DevicePool::place`] under an explicit policy (for A/B sweeps).
    pub fn place_with(&self, policy: PlacementPolicy, function_seed: u64, nth: u64) -> usize {
        let n = self.devices.len() as u64;
        let pick = match policy {
            PlacementPolicy::Locality => mix64(function_seed) % n,
            PlacementPolicy::Stripe => nth % n,
        };
        usize::try_from(pick).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_telemetry::TelemetrySession;

    fn topo(load_permille: u32) -> FabricTopology {
        FabricTopology::new(FabricConfig {
            background_load_permille: load_permille,
            ..FabricConfig::default()
        })
    }

    #[test]
    fn fabric_isolated_transfer_costs_exactly_zero() {
        let t = topo(0);
        // First transfer on an idle fabric: nothing in flight anywhere,
        // delay must be exactly zero — the calibration contract.
        let d = t.charge(0, SimTime::from_nanos(100), &[4096, 4096, 0, 0]);
        assert_eq!(d, SimDuration::ZERO);
        let stats = t.stats();
        assert_eq!(stats.transfers, 1);
        assert_eq!(stats.charged_bytes, 8192);
        assert_eq!(stats.max_queue_delay, SimDuration::ZERO);
        // Empty transfers don't even count.
        assert_eq!(
            t.charge(0, SimTime::from_nanos(200), &[0, 0]),
            SimDuration::ZERO
        );
        assert_eq!(t.stats().transfers, 1);
    }

    #[test]
    fn fabric_backlog_slows_the_next_transfer_and_ages_out() {
        let t = topo(0);
        let now = SimTime::from_nanos(1000);
        assert_eq!(t.charge(0, now, &[1 << 20]), SimDuration::ZERO);
        // Same window: the second transfer queues behind the first.
        let d2 = t.charge(0, SimTime::from_nanos(1001), &[1 << 20]);
        assert!(d2 > SimDuration::ZERO, "backlog must delay");
        // A different port of the same device only pays the shared
        // uplink, not the busy port.
        let d_other = t.charge(0, SimTime::from_nanos(1002), &[0, 1 << 20]);
        assert!(d_other > SimDuration::ZERO && d_other < d2);
        // After a full window of idle virtual time every byte has aged
        // out: back to exactly zero.
        let later = SimTime::from_nanos(1002 + 2 * t.config().window_ns);
        assert_eq!(t.charge(0, later, &[1 << 20]), SimDuration::ZERO);
    }

    #[test]
    fn fabric_devices_are_independent_behind_the_switch() {
        let t = FabricTopology::new(FabricConfig {
            devices: 2,
            ..FabricConfig::default()
        });
        let now = SimTime::from_nanos(0);
        assert_eq!(t.charge(0, now, &[1 << 20]), SimDuration::ZERO);
        // The other device's ports and uplink are untouched.
        assert_eq!(
            t.charge(1, SimTime::from_nanos(1), &[1 << 20]),
            SimDuration::ZERO
        );
        // While the same device back-to-back pays.
        assert!(t.charge(0, SimTime::from_nanos(2), &[1 << 20]) > SimDuration::ZERO);
    }

    #[test]
    fn fabric_delay_is_monotone_in_background_load() {
        let payload = [256 * 4096u64; 8];
        let mut prev = SimDuration::ZERO;
        for load in [0, 250, 500, 750, 900] {
            let t = topo(load);
            // Two charges: the second sees background + the first.
            t.charge(0, SimTime::from_nanos(0), &payload);
            let d = t.charge(0, SimTime::from_nanos(1), &payload);
            assert!(d >= prev, "load {load}: delay {d:?} fell below {prev:?}");
            if load > 0 {
                assert!(d > SimDuration::ZERO);
            }
            prev = d;
        }
    }

    #[test]
    fn fabric_cursor_is_monotone_under_disagreeing_clocks() {
        let t = topo(0);
        t.charge(0, SimTime::from_nanos(5_000_000), &[1 << 20]);
        // A node whose clock lags charges "in the past": the switch
        // clamps to its cursor instead of rewinding the window.
        let d = t.charge(0, SimTime::from_nanos(10), &[1 << 20]);
        assert!(
            d > SimDuration::ZERO,
            "lagging clock must not reset the window"
        );
    }

    #[test]
    fn fabric_telemetry_is_cost_invariant() {
        let run = || {
            let t = topo(300);
            let mut delays = Vec::new();
            for i in 0..16u64 {
                delays.push(t.charge(0, SimTime::from_nanos(i * 10_000), &[i * 4096, 4096]));
            }
            (delays, t.stats())
        };
        let (unarmed, stats_unarmed) = run();
        let session = TelemetrySession::start();
        let (armed, stats_armed) = run();
        let data = session.finish();
        assert_eq!(unarmed, armed, "armed telemetry must not change delays");
        assert_eq!(stats_unarmed, stats_armed);
        // And the session actually observed the fabric.
        assert!(data.registry.counter("cxl_fabric", "bytes", Some(0)) > 0);
    }

    #[test]
    fn fabric_port_utilization_reports_background_floor() {
        let t = topo(500);
        // No traffic: every port still reports the synthetic 500 ‰.
        let u = t.port_utilization_permille(0, 3);
        assert!((490..=510).contains(&u), "got {u} ‰");
    }

    #[test]
    fn placement_policies_split_locality_and_stripe() {
        let t = Arc::new(FabricTopology::new(FabricConfig {
            devices: 2,
            placement: PlacementPolicy::Locality,
            ..FabricConfig::default()
        }));
        let pool = DevicePool::attach(
            t,
            vec![
                Arc::new(CxlDevice::with_capacity_mib(4)),
                Arc::new(CxlDevice::with_capacity_mib(4)),
            ],
        );
        assert_eq!(pool.len(), 2);
        assert!(pool.device(0).fabric_armed() && pool.device(1).fabric_armed());
        // Locality: every image of one function lands on one device.
        let home = pool.place(42, 0);
        for nth in 1..32 {
            assert_eq!(pool.place(42, nth), home);
        }
        // ... and the hash actually uses the function identity.
        assert!(
            (0..64).any(|f| pool.place_with(PlacementPolicy::Locality, f, 0) != home),
            "locality hash maps every function to one device"
        );
        // Stripe: consecutive images alternate.
        for nth in 0..32 {
            assert_eq!(
                pool.place_with(PlacementPolicy::Stripe, 42, nth),
                (nth % 2) as usize
            );
        }
    }
}
