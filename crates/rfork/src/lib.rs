//! The common remote-fork interface.
//!
//! All three mechanisms the paper evaluates — CRIU-CXL (state of
//! practice), Mitosis-CXL (state of the art) and CXLfork (the
//! contribution) — follow "the standard checkpoint-and-restore interface
//! of remote fork" (§3.1): a *checkpoint* operation captures a running
//! process's state, and a *restore* operation clones it into a new process
//! on (conceptually) another node. This crate defines that interface
//! ([`RemoteFork`]) plus the report types the evaluation harness consumes:
//! restore latency, fault breakdowns and local/CXL memory consumption.
//!
//! The trait is deliberately generic over the checkpoint representation:
//! CRIU checkpoints are image files on a shared filesystem, Mitosis
//! checkpoints live in the parent node's memory, CXLfork checkpoints are
//! rebased structures in CXL device memory. What they share is the
//! lifecycle and the measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod wire;

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use cxl_mem::CxlError;
use node_os::addr::Pid;
use node_os::{Node, OsError};
use simclock::{SimDuration, SimTime};

/// Identifies a checkpoint in an object store (the paper's CID, §5).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CheckpointId(pub u64);

impl fmt::Display for CheckpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cid{}", self.0)
    }
}

/// Metadata common to every checkpoint representation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointMeta {
    /// The checkpointed command name.
    pub comm: String,
    /// Total process pages captured.
    pub footprint_pages: u64,
    /// Pages the checkpoint occupies on the CXL device (zero for
    /// mechanisms that keep state elsewhere).
    pub cxl_pages: u64,
    /// Virtual time at which the checkpoint completed.
    pub created_at: SimTime,
    /// Modelled cost of taking the checkpoint.
    pub checkpoint_cost: SimDuration,
    /// Number of VMAs captured.
    pub vma_count: usize,
}

/// Result of a restore: the new pid plus its cost report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Restored {
    /// The restored process on the target node.
    pub pid: Pid,
    /// The modelled restore latency — the "Restore" bar of Fig. 7a.
    pub restore_latency: SimDuration,
}

/// How a restored address space should tier checkpointed pages (§4.3).
///
/// Only CXLfork implements all three; the baselines have a fixed
/// behaviour (CRIU copies everything up front, Mitosis is inherently
/// migrate-on-access) and ignore this knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TierPolicy {
    /// Migrate-on-write: CXLfork's default.
    #[default]
    MigrateOnWrite,
    /// Migrate-on-access (no tiering).
    MigrateOnAccess,
    /// Hybrid: A-bit-guided placement.
    Hybrid,
}

impl fmt::Display for TierPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TierPolicy::MigrateOnWrite => write!(f, "MoW"),
            TierPolicy::MigrateOnAccess => write!(f, "MoA"),
            TierPolicy::Hybrid => write!(f, "HT"),
        }
    }
}

/// Options for a restore operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RestoreOptions {
    /// Tiering policy for the restored address space.
    pub policy: TierPolicy,
    /// Opportunistically prefetch checkpoint-dirty pages into local memory
    /// during restore (§4.2.1, CXLfork only).
    pub prefetch_dirty: bool,
    /// Under hybrid tiering, copy the A-set (hot) pages to local memory
    /// *synchronously during restore* instead of on first access. The
    /// paper evaluated this alternative and found it "trades off remote
    /// fork tail latency for fewer CXL faults \[and\] generally delivers
    /// lower performance" (§4.3); it is exposed for the ablation harness.
    pub sync_hot_prefetch: bool,
}

impl RestoreOptions {
    /// CXLfork's default configuration: migrate-on-write with dirty-page
    /// prefetch.
    pub fn mow() -> Self {
        RestoreOptions {
            policy: TierPolicy::MigrateOnWrite,
            prefetch_dirty: true,
            sync_hot_prefetch: false,
        }
    }

    /// Migrate-on-access (no tiering).
    pub fn moa() -> Self {
        RestoreOptions {
            policy: TierPolicy::MigrateOnAccess,
            prefetch_dirty: false,
            sync_hot_prefetch: false,
        }
    }

    /// Hybrid tiering (hot pages migrate on first access).
    pub fn hybrid() -> Self {
        RestoreOptions {
            policy: TierPolicy::Hybrid,
            prefetch_dirty: true,
            sync_hot_prefetch: false,
        }
    }

    /// The §4.3 alternative: hybrid tiering with hot pages prefetched
    /// synchronously during restore.
    pub fn hybrid_sync_prefetch() -> Self {
        RestoreOptions {
            policy: TierPolicy::Hybrid,
            prefetch_dirty: true,
            sync_hot_prefetch: true,
        }
    }
}

/// Errors from checkpoint/restore operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RforkError {
    /// An OS-level failure on the source or target node.
    Os(OsError),
    /// A CXL device failure (usually: the device is full).
    Cxl(CxlError),
    /// The checkpoint image is missing or malformed.
    BadImage(String),
    /// The process uses state the mechanism cannot checkpoint (e.g.
    /// shared anonymous mappings, §4.1).
    Unsupported(String),
    /// A record is too large for the wire format's 32-bit length prefix
    /// (the encoder refuses rather than silently truncating the length).
    OversizedRecord {
        /// Actual record length in bytes.
        len: usize,
    },
    /// Bounded-backoff retries against the CXL device gave up during a
    /// checkpoint or restore: the link stayed transiently faulted
    /// through every attempt.
    RetriesExhausted {
        /// The operation that gave up (e.g. `"checkpoint_copy"`).
        op: &'static str,
        /// Attempts made (including the first).
        attempts: u32,
        /// The last transient error observed.
        last: CxlError,
    },
    /// The checkpoint's image was evicted from the content-addressed
    /// store under capacity pressure. A typed miss, never stale bytes:
    /// the caller should discard the checkpoint handle and re-checkpoint
    /// from a warm instance.
    EvictedImage {
        /// The evicted store image id.
        image: u64,
    },
}

impl fmt::Display for RforkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RforkError::Os(e) => write!(f, "os error during remote fork: {e}"),
            RforkError::Cxl(e) => write!(f, "cxl error during remote fork: {e}"),
            RforkError::BadImage(m) => write!(f, "bad checkpoint image: {m}"),
            RforkError::Unsupported(m) => write!(f, "unsupported process state: {m}"),
            RforkError::OversizedRecord { len } => write!(
                f,
                "record of {len} bytes exceeds the wire format's u32 length prefix"
            ),
            RforkError::RetriesExhausted { op, attempts, last } => write!(
                f,
                "cxl device unavailable during {op} after {attempts} attempts: {last}"
            ),
            RforkError::EvictedImage { image } => write!(
                f,
                "checkpoint image#{image} was evicted from the store; re-checkpoint required"
            ),
        }
    }
}

impl Error for RforkError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RforkError::Os(e) => Some(e),
            RforkError::Cxl(e) => Some(e),
            RforkError::RetriesExhausted { last, .. } => Some(last),
            _ => None,
        }
    }
}

impl From<OsError> for RforkError {
    fn from(e: OsError) -> Self {
        match e {
            OsError::Cxl(c) => RforkError::Cxl(c),
            OsError::DeviceRetriesExhausted { attempts, last } => RforkError::RetriesExhausted {
                op: "page_fault",
                attempts,
                last,
            },
            other => RforkError::Os(other),
        }
    }
}

impl From<CxlError> for RforkError {
    fn from(e: CxlError) -> Self {
        RforkError::Cxl(e)
    }
}

/// A remote-fork mechanism: checkpoint on one node, restore on another.
///
/// Implementations charge all modelled costs to the respective node's
/// clock *and* report them in their return values, so harnesses can
/// aggregate either way.
pub trait RemoteFork {
    /// The mechanism's checkpoint representation.
    type Checkpoint;

    /// Short mechanism name for reports (`"CRIU-CXL"`, `"Mitosis-CXL"`,
    /// `"CXLfork"`).
    fn name(&self) -> &'static str;

    /// Checkpoints the running process `pid` on `node`.
    ///
    /// # Errors
    ///
    /// Returns [`RforkError`] if the process does not exist, the device or
    /// filesystem backing the checkpoint is full, or the process holds
    /// unsupported state.
    fn checkpoint(&self, node: &mut Node, pid: Pid) -> Result<Self::Checkpoint, RforkError>;

    /// Restores a new process from `checkpoint` onto `node` with
    /// `options`.
    ///
    /// # Errors
    ///
    /// Returns [`RforkError`] if the image is unreadable or the target
    /// node lacks memory.
    fn restore_with(
        &self,
        checkpoint: &Self::Checkpoint,
        node: &mut Node,
        options: RestoreOptions,
    ) -> Result<Restored, RforkError>;

    /// Restores with the mechanism's default options.
    ///
    /// # Errors
    ///
    /// Same as [`RemoteFork::restore_with`].
    fn restore(
        &self,
        checkpoint: &Self::Checkpoint,
        node: &mut Node,
    ) -> Result<Restored, RforkError> {
        self.restore_with(checkpoint, node, RestoreOptions::default())
    }

    /// Metadata of a checkpoint.
    fn meta<'c>(&self, checkpoint: &'c Self::Checkpoint) -> &'c CheckpointMeta;

    /// The checkpoint's image id in the content-addressed store, if the
    /// mechanism routed it through one. Orchestrators use this to pin or
    /// lease images in the store; mechanisms without a store (the
    /// default) return `None`.
    fn image_id(&self, checkpoint: &Self::Checkpoint) -> Option<u64> {
        let _ = checkpoint;
        None
    }

    /// Estimated node-local pages a restore with `options` will consume
    /// (autoscalers use this to decide whether to reclaim memory before
    /// restoring). The default is pessimistic: the full footprint.
    fn restore_memory_estimate(
        &self,
        checkpoint: &Self::Checkpoint,
        options: RestoreOptions,
    ) -> u64 {
        let _ = options;
        self.meta(checkpoint).footprint_pages
    }

    /// Periodic checkpoint maintenance hook. CXLporter calls this on its
    /// maintenance interval; CXLfork uses it to reset the checkpointed A
    /// bits and re-estimate hot pages (§4.3, §5). Default: no-op.
    fn maintain(&self, checkpoint: &Self::Checkpoint) {
        let _ = checkpoint;
    }

    /// Releases a checkpoint's storage (CXL region, image files, shadow
    /// copies). CXLporter invokes this when reclaiming checkpoints under
    /// CXL memory pressure (§5). Returns the number of CXL device pages
    /// freed. Default: drop-only (no device storage to free).
    ///
    /// # Errors
    ///
    /// Implementations may fail if the backing storage is already gone.
    fn release_checkpoint(
        &self,
        checkpoint: Self::Checkpoint,
        node: &Node,
    ) -> Result<u64, RforkError> {
        let _ = (checkpoint, node);
        Ok(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_policy_display() {
        assert_eq!(TierPolicy::MigrateOnWrite.to_string(), "MoW");
        assert_eq!(TierPolicy::MigrateOnAccess.to_string(), "MoA");
        assert_eq!(TierPolicy::Hybrid.to_string(), "HT");
        assert_eq!(TierPolicy::default(), TierPolicy::MigrateOnWrite);
    }

    #[test]
    fn restore_option_presets() {
        assert!(RestoreOptions::mow().prefetch_dirty);
        assert_eq!(RestoreOptions::moa().policy, TierPolicy::MigrateOnAccess);
        assert!(!RestoreOptions::moa().prefetch_dirty);
        assert_eq!(RestoreOptions::hybrid().policy, TierPolicy::Hybrid);
        assert!(!RestoreOptions::hybrid().sync_hot_prefetch);
        assert!(RestoreOptions::hybrid_sync_prefetch().sync_hot_prefetch);
        assert_eq!(RestoreOptions::default().policy, TierPolicy::MigrateOnWrite);
        assert!(!RestoreOptions::default().prefetch_dirty);
    }

    #[test]
    fn errors_convert_and_chain() {
        let e: RforkError = OsError::NoSuchProcess(Pid(1)).into();
        assert!(matches!(e, RforkError::Os(_)));
        assert!(Error::source(&e).is_some());
        // CXL errors inside OsError unwrap to the CXL variant.
        let e2: RforkError = OsError::Cxl(CxlError::BadPage(cxl_mem::CxlPageId(1))).into();
        assert!(matches!(e2, RforkError::Cxl(_)));
        let e3: RforkError = CxlError::FileNotFound("x".into()).into();
        assert!(e3.to_string().contains("cxl error"));
    }

    #[test]
    fn checkpoint_id_display() {
        assert_eq!(CheckpointId(7).to_string(), "cid7");
    }
}
