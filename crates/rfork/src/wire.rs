//! A small validating binary wire format shared by the checkpoint
//! mechanisms.
//!
//! Real CRIU serializes process state with Protocol Buffers; Mitosis uses
//! a compact OS-state descriptor. Both reproductions encode their images
//! with this self-describing format: every image starts with a 32-bit
//! magic identifying its type, and records are fixed-width integers and
//! length-prefixed byte strings. Decoding validates magics and lengths, so
//! corrupted or mismatched images fail loudly.

use crate::RforkError;

/// A growable image encoder.
///
/// # Example
///
/// ```
/// use rfork::wire::{ImageReader, ImageWriter};
///
/// # fn main() -> Result<(), rfork::RforkError> {
/// let mut w = ImageWriter::new(0xC1A0_0001);
/// w.put_u64(42);
/// w.put_str("bert")?;
/// let bytes = w.into_bytes();
///
/// let mut r = ImageReader::new(&bytes, 0xC1A0_0001)?;
/// assert_eq!(r.get_u64()?, 42);
/// assert_eq!(r.get_str()?, "bert");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ImageWriter {
    buf: Vec<u8>,
}

impl ImageWriter {
    /// Starts an image of the given type.
    pub fn new(magic: u32) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&magic.to_le_bytes());
        ImageWriter { buf }
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`RforkError::OversizedRecord`] if `v` does not fit the 32-bit
    /// length prefix (a `v.len() as u32` cast would silently wrap for
    /// payloads ≥ 4 GiB and corrupt the image).
    pub fn put_bytes(&mut self, v: &[u8]) -> Result<(), RforkError> {
        let len =
            u32::try_from(v.len()).map_err(|_| RforkError::OversizedRecord { len: v.len() })?;
        self.put_u32(len);
        self.buf.extend_from_slice(v);
        Ok(())
    }

    /// Appends a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Same as [`ImageWriter::put_bytes`].
    pub fn put_str(&mut self, v: &str) -> Result<(), RforkError> {
        self.put_bytes(v.as_bytes())
    }

    /// Current encoded length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if only the magic has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.len() <= 4
    }

    /// Finishes the image.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// A validating image decoder.
#[derive(Debug)]
pub struct ImageReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ImageReader<'a> {
    /// Opens an image, validating its magic.
    ///
    /// # Errors
    ///
    /// [`RforkError::BadImage`] if the buffer is too short or the magic
    /// does not match `expected_magic`.
    pub fn new(buf: &'a [u8], expected_magic: u32) -> Result<Self, RforkError> {
        if buf.len() < 4 {
            return Err(RforkError::BadImage("image shorter than magic".into()));
        }
        let magic = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"));
        if magic != expected_magic {
            return Err(RforkError::BadImage(format!(
                "magic mismatch: expected {expected_magic:#010x}, found {magic:#010x}"
            )));
        }
        Ok(ImageReader { buf, pos: 4 })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RforkError> {
        // checked_add: a corrupt length prefix near usize::MAX must fail
        // cleanly instead of wrapping the bound check into an over-read.
        let in_bounds = self
            .pos
            .checked_add(n)
            .is_some_and(|end| end <= self.buf.len());
        if !in_bounds {
            return Err(RforkError::BadImage(format!(
                "truncated image: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// [`RforkError::BadImage`] on truncation.
    pub fn get_u64(&mut self) -> Result<u64, RforkError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// [`RforkError::BadImage`] on truncation.
    pub fn get_u32(&mut self) -> Result<u32, RforkError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a `u16`.
    ///
    /// # Errors
    ///
    /// [`RforkError::BadImage`] on truncation.
    pub fn get_u16(&mut self) -> Result<u16, RforkError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a boolean.
    ///
    /// # Errors
    ///
    /// [`RforkError::BadImage`] on truncation or a byte other than 0/1.
    pub fn get_bool(&mut self) -> Result<bool, RforkError> {
        match self.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(RforkError::BadImage(format!("bad bool byte {other}"))),
        }
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`RforkError::BadImage`] on truncation.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], RforkError> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`RforkError::BadImage`] on truncation or invalid UTF-8.
    pub fn get_str(&mut self) -> Result<&'a str, RforkError> {
        std::str::from_utf8(self.get_bytes()?)
            .map_err(|e| RforkError::BadImage(format!("invalid utf-8 in image: {e}")))
    }

    /// `true` once all bytes are consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CORE_MAGIC: u32 = 0xC1A0_0001;
    const MM_MAGIC: u32 = 0xC1A0_0002;
    const PAGEMAP_MAGIC: u32 = 0xC1A0_0003;

    #[test]
    fn roundtrip_all_primitives() {
        let mut w = ImageWriter::new(MM_MAGIC);
        w.put_u64(u64::MAX);
        w.put_u32(7);
        w.put_u16(513);
        w.put_bool(true);
        w.put_bool(false);
        w.put_bytes(&[1, 2, 3]).unwrap();
        w.put_str("héllo").unwrap();
        let bytes = w.into_bytes();

        let mut r = ImageReader::new(&bytes, MM_MAGIC).unwrap();
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_u32().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 513);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert!(r.is_exhausted());
    }

    #[test]
    fn magic_mismatch_is_rejected() {
        let w = ImageWriter::new(CORE_MAGIC);
        let bytes = w.into_bytes();
        let err = ImageReader::new(&bytes, MM_MAGIC).unwrap_err();
        assert!(matches!(err, RforkError::BadImage(_)));
        assert!(err.to_string().contains("magic mismatch"));
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = ImageWriter::new(PAGEMAP_MAGIC);
        w.put_u64(1);
        let mut bytes = w.into_bytes();
        bytes.truncate(8); // chop the u64 in half
        let mut r = ImageReader::new(&bytes, PAGEMAP_MAGIC).unwrap();
        assert!(matches!(r.get_u64(), Err(RforkError::BadImage(_))));
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(matches!(
            ImageReader::new(&[1, 2], CORE_MAGIC),
            Err(RforkError::BadImage(_))
        ));
    }

    #[test]
    fn bad_bool_rejected() {
        let mut w = ImageWriter::new(CORE_MAGIC);
        w.put_u16(0x0202); // two bytes of 2
        let bytes = w.into_bytes();
        let mut r = ImageReader::new(&bytes, CORE_MAGIC).unwrap();
        assert!(r.get_bool().is_err());
    }

    #[test]
    fn corrupt_oversized_length_errors_cleanly() {
        // A corrupt length prefix far past the buffer — including values
        // whose `pos + len` would wrap a usize — must produce a clean
        // BadImage error, never an over-read.
        let mut w = ImageWriter::new(CORE_MAGIC);
        w.put_u32(u32::MAX); // claims a ~4 GiB payload follows
        w.put_bytes(b"tiny").unwrap();
        let bytes = w.into_bytes();
        let mut r = ImageReader::new(&bytes, CORE_MAGIC).unwrap();
        let err = r.get_bytes().unwrap_err();
        assert!(matches!(err, RforkError::BadImage(_)), "{err}");
        assert!(err.to_string().contains("truncated image"), "{err}");
    }

    #[test]
    fn writer_len_tracks_content() {
        let mut w = ImageWriter::new(CORE_MAGIC);
        assert!(w.is_empty());
        assert_eq!(w.len(), 4);
        w.put_u64(0);
        assert_eq!(w.len(), 12);
        assert!(!w.is_empty());
    }
}
