//! Mitosis-CXL: the state-of-the-art remote-fork baseline.
//!
//! Mitosis (OSDI '23) "creates a shadow immutable copy of the parent
//! process in the memory of the same node, while serializing the OS state
//! … Then, it transfers the serialized OS state to the remote node using
//! one-sided RDMA operations, and deserializes it to create a new process
//! … By default, the forked process is resumed without copying the
//! parent's memory pages. As the forked process executes, it triggers
//! special page faults that copy such pages from the parent node lazily"
//! (§2.3.2). The paper ports it to CXL by replacing the RDMA verbs with
//! page copies over shared CXL memory, so "each 'remote' fault thus
//! includes the latency to store and fetch data from CXL memory" (§6.2).
//!
//! This crate reproduces that adapted design:
//!
//! * **Checkpoint** takes a *shadow copy* of every resident page into the
//!   parent node's local memory (cheap local streaming copies — this is
//!   why Mitosis checkpoints ≈1.5× faster than CXLfork, §7.1) and encodes
//!   a compact OS-state descriptor (task, VMAs, per-page records).
//! * **Restore** ships the descriptor over CXL, decodes it (the per-PTE
//!   decoding that costs Mitosis up to 15 ms for BERT, §7.1), rebuilds the
//!   task and VMA tree, and installs a *migrate-on-access* backing: every
//!   first touch of a page takes a remote fault that copies it from the
//!   parent's shadow via a CXL store+fetch pair. Nothing is shared between
//!   siblings — each child materializes its own local copy of every page
//!   it touches, which is why Mitosis consumes 24× the local memory of a
//!   local fork for BERT (Fig. 3c).
//!
//! The design also inherits Mitosis's lifecycle coupling: the checkpoint
//! pins the parent node's shadow pages, so the parent cannot release them
//! until all remote children exit (§3.1) — modelled by
//! [`MitosisCheckpoint::shadow_pages`] accounting against the parent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cxl_mem::{PageData, PAGE_SIZE};
use node_os::addr::{PhysAddr, Pid, VirtPageNum};
use node_os::mm::{BackingPage, BackingSource, CxlBacking, CxlTierPolicy};
use node_os::process::{FdTable, FileDescriptor, Registers};
use node_os::vma::{Protection, Vma, VmaKind};
use node_os::Node;
use rfork::wire::{ImageReader, ImageWriter};
use rfork::{CheckpointMeta, RemoteFork, RestoreOptions, Restored, RforkError};
use simclock::SimDuration;

/// Magic of a Mitosis OS-state descriptor.
pub const DESCRIPTOR_MAGIC: u32 = 0x3170_5150;

/// The Mitosis-CXL mechanism.
///
/// Stateless apart from an id counter; the per-fork state lives in
/// [`MitosisCheckpoint`].
#[derive(Debug, Default)]
pub struct MitosisCxl {
    next_id: AtomicU64,
}

/// One per-page record in the shadow copy.
#[derive(Debug, Clone)]
struct ShadowPage {
    vpn: u64,
    dirty: bool,
    accessed: bool,
    file_backed: bool,
    data: Arc<PageData>,
}

/// A Mitosis checkpoint: the serialized OS-state descriptor plus the
/// parent-resident shadow copy of the process pages.
#[derive(Debug)]
pub struct MitosisCheckpoint {
    meta: CheckpointMeta,
    /// Encoded OS-state descriptor (what gets shipped over CXL at
    /// restore).
    descriptor: Vec<u8>,
    shadow: Vec<ShadowPage>,
}

impl MitosisCheckpoint {
    /// Pages pinned in the parent node's local memory by the shadow copy.
    pub fn shadow_pages(&self) -> u64 {
        self.shadow.len() as u64
    }

    /// Size of the OS-state descriptor in bytes.
    pub fn descriptor_bytes(&self) -> u64 {
        self.descriptor.len() as u64
    }
}

impl MitosisCxl {
    /// Creates the mechanism.
    pub fn new() -> Self {
        MitosisCxl::default()
    }

    fn encode_descriptor(
        comm: &str,
        regs: &Registers,
        fds: &[FileDescriptor],
        pid_ns: u64,
        mount_ns: u64,
        vmas: &[Vma],
        shadow: &[ShadowPage],
    ) -> Result<Vec<u8>, RforkError> {
        let mut w = ImageWriter::new(DESCRIPTOR_MAGIC);
        w.put_str(comm)?;
        for r in regs.gpr {
            w.put_u64(r);
        }
        w.put_u64(regs.rip);
        w.put_u64(regs.rsp);
        w.put_u64(pid_ns);
        w.put_u64(mount_ns);
        w.put_u32(fds.len() as u32);
        for fd in fds {
            w.put_str(&fd.path)?;
            w.put_u64(fd.offset);
            w.put_bool(fd.writable);
        }
        w.put_u32(vmas.len() as u32);
        for v in vmas {
            w.put_u64(v.start);
            w.put_u64(v.end);
            w.put_bool(v.prot.read);
            w.put_bool(v.prot.write);
            w.put_bool(v.prot.exec);
            w.put_str(&v.label)?;
            match &v.kind {
                VmaKind::Anonymous => w.put_u16(0),
                VmaKind::SharedAnonymous => w.put_u16(2),
                VmaKind::File {
                    path,
                    file_start_page,
                } => {
                    w.put_u16(1);
                    w.put_str(path)?;
                    w.put_u64(*file_start_page);
                }
            }
        }
        // Per-page records (vpn + flag bits); contents stay in the shadow.
        w.put_u64(shadow.len() as u64);
        for p in shadow {
            w.put_u64(p.vpn);
            w.put_bool(p.dirty);
            w.put_bool(p.accessed);
            w.put_bool(p.file_backed);
        }
        Ok(w.into_bytes())
    }
}

/// Decoded descriptor contents.
struct Descriptor {
    comm: String,
    regs: Registers,
    fds: Vec<FileDescriptor>,
    pid_ns: u64,
    mount_ns: u64,
    vmas: Vec<Vma>,
    pages: Vec<(u64, bool, bool, bool)>,
}

fn decode_descriptor(bytes: &[u8]) -> Result<Descriptor, RforkError> {
    let mut r = ImageReader::new(bytes, DESCRIPTOR_MAGIC)?;
    let comm = r.get_str()?.to_owned();
    let mut gpr = [0u64; 16];
    for g in &mut gpr {
        *g = r.get_u64()?;
    }
    let rip = r.get_u64()?;
    let rsp = r.get_u64()?;
    let pid_ns = r.get_u64()?;
    let mount_ns = r.get_u64()?;
    let nfds = r.get_u32()? as usize;
    let mut fds = Vec::with_capacity(nfds);
    for _ in 0..nfds {
        fds.push(FileDescriptor {
            path: r.get_str()?.to_owned(),
            offset: r.get_u64()?,
            writable: r.get_bool()?,
        });
    }
    let nvmas = r.get_u32()? as usize;
    let mut vmas = Vec::with_capacity(nvmas);
    for _ in 0..nvmas {
        let start = r.get_u64()?;
        let end = r.get_u64()?;
        let prot = Protection {
            read: r.get_bool()?,
            write: r.get_bool()?,
            exec: r.get_bool()?,
        };
        let label = r.get_str()?.to_owned();
        let kind = match r.get_u16()? {
            0 => VmaKind::Anonymous,
            1 => VmaKind::File {
                path: r.get_str()?.to_owned(),
                file_start_page: r.get_u64()?,
            },
            t => {
                return Err(RforkError::BadImage(format!(
                    "unknown vma kind tag {t} in mitosis descriptor"
                )))
            }
        };
        let mut vma = Vma::anonymous(start, end, prot, &label);
        vma.kind = kind;
        vmas.push(vma);
    }
    let npages = r.get_u64()? as usize;
    let mut pages = Vec::with_capacity(npages);
    for _ in 0..npages {
        pages.push((r.get_u64()?, r.get_bool()?, r.get_bool()?, r.get_bool()?));
    }
    Ok(Descriptor {
        comm,
        regs: Registers { gpr, rip, rsp },
        fds,
        pid_ns,
        mount_ns,
        vmas,
        pages,
    })
}

impl RemoteFork for MitosisCxl {
    type Checkpoint = MitosisCheckpoint;

    fn name(&self) -> &'static str {
        "Mitosis-CXL"
    }

    fn checkpoint(&self, node: &mut Node, pid: Pid) -> Result<MitosisCheckpoint, RforkError> {
        let node_id = node.id();
        let model = node.model().clone();
        let _id = self.next_id.fetch_add(1, Ordering::Relaxed);

        let (descriptor, shadow, footprint_pages, vma_count) = {
            let process = node.process(pid)?;
            let mut shadow = Vec::new();
            let mut footprint_pages = 0u64;
            for (vpn, pte) in process.mm.page_table.iter_populated() {
                if !pte.is_present() {
                    continue;
                }
                footprint_pages += 1;
                let data = match pte.target().expect("present pte") {
                    PhysAddr::Local(pfn) => node.frames().data(pfn).clone(),
                    PhysAddr::Cxl(page) => node.device().read_page(page, node_id)?,
                };
                shadow.push(ShadowPage {
                    vpn: vpn.0,
                    dirty: pte.is_dirty(),
                    accessed: process.mm.page_table.is_accessed(vpn),
                    file_backed: pte.flags().contains(node_os::pte::PteFlags::FILE),
                    data: Arc::new(data),
                });
            }
            let vmas: Vec<Vma> = process.mm.vmas.iter().cloned().collect();
            let fds: Vec<FileDescriptor> =
                process.task.fds.iter().map(|(_, d)| d.clone()).collect();
            let descriptor = MitosisCxl::encode_descriptor(
                &process.task.comm,
                &process.task.regs,
                &fds,
                process.task.ns.pid_ns,
                process.task.ns.mount_ns,
                &vmas,
                &shadow,
            )?;
            (descriptor, shadow, footprint_pages, vmas.len())
        };

        // Cost: local shadow copy + per-PTE descriptor encoding. No CXL
        // traffic at checkpoint time — that is the point of Mitosis.
        let cost = model.local_copy(shadow.len() as u64 * PAGE_SIZE)
            + SimDuration::from_nanos(model.descriptor_encode_pte_ns) * shadow.len() as u64
            + model.serialize(descriptor.len() as u64);
        node.clock_mut().advance(cost);
        node.counters_note("mitosis_checkpoint");

        let comm = {
            // Re-borrow for the comm; cheap.
            node.process(pid)?.task.comm.clone()
        };
        Ok(MitosisCheckpoint {
            meta: CheckpointMeta {
                comm,
                footprint_pages,
                cxl_pages: 0,
                created_at: node.now(),
                checkpoint_cost: cost,
                vma_count,
            },
            descriptor,
            shadow,
        })
    }

    fn restore_with(
        &self,
        checkpoint: &MitosisCheckpoint,
        node: &mut Node,
        _options: RestoreOptions,
    ) -> Result<Restored, RforkError> {
        let model = node.model().clone();
        let d = decode_descriptor(&checkpoint.descriptor)?;

        // Cost: ship the descriptor over CXL (store on the parent side,
        // fetch on ours), then decode it per PTE and rebuild OS state.
        let desc_bytes = checkpoint.descriptor.len() as u64;
        let mut cost = SimDuration::from_nanos(model.process_create_ns)
            + model.cxl_write_copy(desc_bytes)
            + model.cxl_copy(desc_bytes)
            + SimDuration::from_nanos(model.descriptor_decode_pte_ns) * d.pages.len() as u64
            + SimDuration::from_nanos(model.fork_vma_copy_ns) * d.vmas.len() as u64
            + SimDuration::from_nanos(model.file_reopen_ns) * d.fds.len() as u64;

        let pid = node.spawn(&d.comm)?;
        {
            let process = node.process_mut(pid)?;
            process.task.regs = d.regs;
            process.task.ns.pid_ns = d.pid_ns;
            process.task.ns.mount_ns = d.mount_ns;
            let mut fds = FdTable::new();
            for fd in &d.fds {
                fds.open(fd.clone());
            }
            process.task.fds = fds;
        }

        // Backing map: every shadow page is pull-able from the parent.
        let mut backing = CxlBacking::new();
        for (record, shadow) in d.pages.iter().zip(&checkpoint.shadow) {
            debug_assert_eq!(record.0, shadow.vpn, "descriptor/shadow order");
            backing.insert(
                VirtPageNum(record.0),
                BackingPage {
                    source: BackingSource::Remote(Arc::clone(&shadow.data)),
                    accessed: record.2,
                    dirty: record.1,
                    file_backed: record.3,
                },
            );
        }
        let backing = Arc::new(backing);
        node.with_process_ctx(pid, |p, _| -> Result<(), RforkError> {
            for vma in &d.vmas {
                p.mm.vmas.insert(vma.clone()).map_err(RforkError::from)?;
            }
            p.mm.set_policy(CxlTierPolicy::MigrateOnAccess);
            p.mm.set_backing(backing);
            Ok(())
        })??;

        // Restores resume without copying any page data.
        cost += SimDuration::from_nanos(model.rebase_pointer_ns) * d.pages.len() as u64;
        node.clock_mut().advance(cost);
        node.counters_note("mitosis_restore");
        Ok(Restored {
            pid,
            restore_latency: cost,
        })
    }

    fn meta<'c>(&self, checkpoint: &'c MitosisCheckpoint) -> &'c CheckpointMeta {
        &checkpoint.meta
    }

    /// Mitosis pulls pages lazily; a child typically materializes the
    /// touched fraction of the footprint, approaching the whole footprint
    /// for long-lived instances. Estimate half.
    fn restore_memory_estimate(
        &self,
        checkpoint: &MitosisCheckpoint,
        _options: RestoreOptions,
    ) -> u64 {
        checkpoint.meta.footprint_pages / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_mem::CxlDevice;
    use node_os::fs::SharedFs;
    use node_os::mm::{Access, FaultKind};
    use node_os::NodeConfig;

    struct Cluster {
        src: Node,
        dst: Node,
        mitosis: MitosisCxl,
    }

    fn cluster() -> Cluster {
        let device = Arc::new(CxlDevice::with_capacity_mib(64));
        let rootfs = Arc::new(SharedFs::new());
        rootfs.create("/lib/libm.so", 16 * PAGE_SIZE, 8);
        Cluster {
            src: Node::with_rootfs(
                NodeConfig::default().with_id(0).with_local_mem_mib(64),
                Arc::clone(&device),
                Arc::clone(&rootfs),
            ),
            dst: Node::with_rootfs(
                NodeConfig::default().with_id(1).with_local_mem_mib(64),
                device,
                rootfs,
            ),
            mitosis: MitosisCxl::new(),
        }
    }

    fn build_process(node: &mut Node) -> Pid {
        let pid = node.spawn("fn").unwrap();
        {
            let p = node.process_mut(pid).unwrap();
            p.task.regs = Registers::seeded(0xB0B);
            p.mm.map_anonymous(0, 32, Protection::read_write(), "heap")
                .unwrap();
            p.mm.map_file(500, 8, Protection::read_exec(), "/lib/libm.so", 0)
                .unwrap();
        }
        for i in 0..32 {
            node.access(pid, i, Access::Write).unwrap();
        }
        for i in 500..504 {
            node.access(pid, i, Access::Read).unwrap();
        }
        pid
    }

    #[test]
    fn checkpoint_shadows_all_resident_pages_locally() {
        let mut c = cluster();
        let pid = build_process(&mut c.src);
        let device_used = c.src.device().used_pages();
        let ckpt = c.mitosis.checkpoint(&mut c.src, pid).unwrap();
        assert_eq!(ckpt.shadow_pages(), 36); // 32 anon + 4 touched file pages
        assert_eq!(c.mitosis.meta(&ckpt).footprint_pages, 36);
        assert_eq!(
            c.mitosis.meta(&ckpt).cxl_pages,
            0,
            "no CXL use at checkpoint"
        );
        assert_eq!(c.src.device().used_pages(), device_used);
        assert!(ckpt.descriptor_bytes() > 0);
    }

    #[test]
    fn restore_is_lazy_and_faults_pull_remotely() {
        let mut c = cluster();
        let pid = build_process(&mut c.src);
        let ckpt = c.mitosis.checkpoint(&mut c.src, pid).unwrap();
        let frames_before = c.dst.frames().used();
        let restored = c.mitosis.restore(&ckpt, &mut c.dst).unwrap();
        // Restore copies no data pages.
        assert_eq!(c.dst.frames().used(), frames_before);
        let child = c.dst.process(restored.pid).unwrap();
        assert_eq!(child.task.regs, Registers::seeded(0xB0B));
        assert_eq!(child.mm.policy(), CxlTierPolicy::MigrateOnAccess);

        // First touch of any page takes a remote pull fault.
        let o = c.dst.access(restored.pid, 5, Access::Read).unwrap();
        assert_eq!(o.fault, Some(FaultKind::RemotePull));
        // Remote pull costs more than a plain CXL pull (store + fetch).
        let model = c.dst.model().clone();
        assert!(o.fault_cost > model.cxl_pull_fault());
        // Second touch: local, no fault.
        let o2 = c.dst.access(restored.pid, 5, Access::Read).unwrap();
        assert_eq!(o2.fault, None);
        assert_eq!(c.dst.frames().used(), frames_before + 1);
    }

    #[test]
    fn pulled_pages_carry_parent_content_and_isolate() {
        let mut c = cluster();
        let pid = build_process(&mut c.src);
        // Scribble into parent page 3.
        let pte = c.src.process(pid).unwrap().mm.translate(VirtPageNum(3));
        let Some(PhysAddr::Local(pfn)) = pte.target() else {
            panic!()
        };
        c.src
            .with_process_ctx(pid, |_, ctx| ctx.frames.data_mut(pfn).write(9, &[0x77]))
            .unwrap();
        let ckpt = c.mitosis.checkpoint(&mut c.src, pid).unwrap();

        // Parent writes AFTER the checkpoint must not leak to children:
        // the shadow copy is immutable.
        c.src
            .with_process_ctx(pid, |_, ctx| ctx.frames.data_mut(pfn).write(9, &[0x99]))
            .unwrap();

        let r1 = c.mitosis.restore(&ckpt, &mut c.dst).unwrap();
        c.dst.access(r1.pid, 3, Access::Read).unwrap();
        let cpte = c.dst.process(r1.pid).unwrap().mm.translate(VirtPageNum(3));
        let Some(PhysAddr::Local(cpfn)) = cpte.target() else {
            panic!()
        };
        assert_eq!(
            c.dst.frames().data(cpfn).byte_at(9),
            0x77,
            "checkpoint-time value"
        );

        // Sibling children do not share pulled pages: each pays its own.
        let r2 = c.mitosis.restore(&ckpt, &mut c.dst).unwrap();
        c.dst.access(r2.pid, 3, Access::Write).unwrap();
        let c2 = c.dst.process(r2.pid).unwrap().mm.translate(VirtPageNum(3));
        let Some(PhysAddr::Local(c2pfn)) = c2.target() else {
            panic!()
        };
        assert_ne!(cpfn, c2pfn);
        assert_eq!(
            c.dst.process(r1.pid).unwrap().mm.private_local_pages()
                + c.dst.process(r2.pid).unwrap().mm.private_local_pages(),
            2,
            "one private copy per sibling"
        );
    }

    #[test]
    fn restore_latency_scales_with_page_table_size_not_footprint_bytes() {
        let mut c = cluster();
        let pid = build_process(&mut c.src);
        let ckpt = c.mitosis.checkpoint(&mut c.src, pid).unwrap();
        let r = c.mitosis.restore(&ckpt, &mut c.dst).unwrap();
        // A CRIU-style restore of 36 pages would cost ≥ deserialize+copy of
        // 144 KiB ≈ 107 µs; Mitosis' lazy restore only pays descriptor
        // work.
        let model = c.dst.model().clone();
        let criu_like = model.deserialize(36 * PAGE_SIZE) + model.cxl_copy(36 * PAGE_SIZE);
        assert!(
            r.restore_latency < criu_like + SimDuration::from_nanos(model.process_create_ns),
            "mitosis {} vs criu-like {}",
            r.restore_latency,
            criu_like
        );
    }

    #[test]
    fn checkpoint_is_faster_than_criu_style_serialization() {
        let mut c = cluster();
        let pid = build_process(&mut c.src);
        let ckpt = c.mitosis.checkpoint(&mut c.src, pid).unwrap();
        let model = c.src.model().clone();
        let criu_cost = model.serialize(36 * PAGE_SIZE) + model.cxl_write_copy(36 * PAGE_SIZE);
        assert!(
            c.mitosis.meta(&ckpt).checkpoint_cost < criu_cost,
            "shadow copy beats serialization"
        );
    }

    #[test]
    fn corrupted_descriptor_is_rejected() {
        let mut c = cluster();
        let pid = build_process(&mut c.src);
        let mut ckpt = c.mitosis.checkpoint(&mut c.src, pid).unwrap();
        ckpt.descriptor.truncate(10);
        assert!(matches!(
            c.mitosis.restore(&ckpt, &mut c.dst),
            Err(RforkError::BadImage(_))
        ));
    }
}
