//! Property-based tests for the OS substrate: page-table and VMA-tree
//! behaviour against reference models, frame refcount invariants, and
//! fault-handler memory-safety under random workloads.

use std::collections::HashMap;

use proptest::prelude::*;

use cxl_mem::PageData;
use node_os::addr::{PhysAddr, VirtPageNum};
use node_os::frame::FrameAllocator;
use node_os::page_table::PageTable;
use node_os::pte::{Pte, PteFlags};
use node_os::vma::{Protection, Vma, VmaTree};

fn arb_pte() -> impl Strategy<Value = Pte> {
    (any::<u64>(), any::<bool>()).prop_map(|(pfn, writable)| {
        let mut flags = PteFlags::PRESENT;
        if writable {
            flags |= PteFlags::WRITABLE;
        }
        Pte::mapped(PhysAddr::Local(node_os::Pfn(pfn % 1024)), flags)
    })
}

proptest! {
    /// The 4-level page table behaves exactly like a `HashMap<vpn, pte>`
    /// under arbitrary set/unmap/get sequences across the whole VPN space.
    #[test]
    fn page_table_matches_hashmap_model(
        ops in prop::collection::vec(
            (0u64..(1u64 << 36), prop::option::of(arb_pte())),
            1..200
        )
    ) {
        let mut pt = PageTable::new();
        let mut model: HashMap<u64, Pte> = HashMap::new();
        for (vpn, op) in ops {
            match op {
                Some(pte) => {
                    pt.set(VirtPageNum(vpn), pte);
                    model.insert(vpn, pte);
                }
                None => {
                    let (old, _) = pt.unmap(VirtPageNum(vpn));
                    prop_assert_eq!(old, model.remove(&vpn).unwrap_or(Pte::EMPTY));
                }
            }
        }
        for (vpn, pte) in &model {
            prop_assert_eq!(pt.get(VirtPageNum(*vpn)), *pte);
        }
        let populated = pt.iter_populated();
        prop_assert_eq!(populated.len(), model.len());
        for (vpn, pte) in populated {
            prop_assert_eq!(model.get(&vpn.0), Some(&pte));
        }
    }

    /// The VMA tree finds exactly the VMAs a linear scan would, under
    /// arbitrary insert/remove sequences.
    #[test]
    fn vma_tree_matches_linear_model(
        ops in prop::collection::vec((0u64..2000, 1u64..50, any::<bool>()), 1..80),
        probes in prop::collection::vec(0u64..2200, 1..40),
    ) {
        let mut tree = VmaTree::new();
        let mut model: Vec<(u64, u64)> = Vec::new();
        for (start, len, insert) in ops {
            if insert {
                let vma = Vma::anonymous(start, start + len, Protection::read_write(), "p");
                let overlaps = model.iter().any(|(s, e)| start < *e && *s < start + len);
                match tree.insert(vma) {
                    Ok(_) => {
                        prop_assert!(!overlaps, "tree accepted an overlap at {start}");
                        model.push((start, start + len));
                    }
                    Err(_) => prop_assert!(overlaps, "tree rejected non-overlap at {start}"),
                }
            } else if let Some((vma, _)) = tree.remove(VirtPageNum(start)) {
                let pos = model
                    .iter()
                    .position(|(s, e)| *s <= start && start < *e)
                    .expect("model has it too");
                prop_assert_eq!((vma.start, vma.end), model.remove(pos));
            } else {
                prop_assert!(!model.iter().any(|(s, e)| *s <= start && start < *e));
            }
        }
        for p in probes {
            let tree_hit = tree.find(VirtPageNum(p)).map(|v| (v.start, v.end));
            let model_hit = model.iter().copied().find(|(s, e)| *s <= p && p < *e);
            prop_assert_eq!(tree_hit, model_hit, "probe at {}", p);
        }
        prop_assert_eq!(tree.vma_count(), model.len());
    }

    /// Frame refcounts: any balanced sequence of inc/dec returns the
    /// allocator to its starting state, and usage never drifts.
    #[test]
    fn frame_refcounts_balance(extra_refs in prop::collection::vec(0u8..8, 1..40)) {
        let mut frames = FrameAllocator::new(64);
        let mut live = Vec::new();
        for n in &extra_refs {
            let pfn = frames.alloc(PageData::zeroed()).unwrap();
            for _ in 0..*n {
                frames.inc_ref(pfn);
            }
            live.push((pfn, *n));
        }
        prop_assert_eq!(frames.used(), live.len() as u64);
        for (pfn, n) in live {
            for i in 0..n {
                prop_assert!(!frames.dec_ref(pfn), "freed too early at ref {i}");
            }
            prop_assert!(frames.dec_ref(pfn), "final dec frees");
        }
        prop_assert_eq!(frames.used(), 0);
    }

    /// Attached-leaf copy-on-write: whatever entries a shared leaf holds,
    /// a write through one attacher never changes what other attachers or
    /// the original leaf observe.
    #[test]
    fn leaf_cow_isolation(
        slots in prop::collection::vec(0usize..512, 1..30),
        write_slot in 0usize..512,
    ) {
        use node_os::page_table::{AttachedLeaf, PtLeaf};
        use std::sync::Arc;

        let mut leaf = PtLeaf::new();
        for s in &slots {
            leaf.set(*s, Pte::mapped(
                PhysAddr::Cxl(cxl_mem::CxlPageId(*s as u64)),
                PteFlags::PRESENT | PteFlags::CKPT_PIN,
            ));
        }
        let shared = Arc::new(leaf);
        let mut a = PageTable::new();
        let mut b = PageTable::new();
        for pt in [&mut a, &mut b] {
            pt.attach_leaf(0, AttachedLeaf {
                leaf: Arc::clone(&shared),
                backing: cxl_mem::CxlPageId(999),
            });
        }
        let before_b: Vec<Pte> = (0..512).map(|s| b.get(VirtPageNum(s as u64))).collect();
        a.set(
            VirtPageNum(write_slot as u64),
            Pte::mapped(PhysAddr::Local(node_os::Pfn(7)), PteFlags::PRESENT),
        );
        // A sees its write.
        prop_assert_eq!(
            a.get(VirtPageNum(write_slot as u64)).target(),
            Some(PhysAddr::Local(node_os::Pfn(7)))
        );
        // B and the shared leaf are untouched.
        for (s, expected) in before_b.iter().enumerate() {
            prop_assert_eq!(b.get(VirtPageNum(s as u64)), *expected);
            prop_assert_eq!(shared.get(s), *expected);
        }
        // A's other entries survive the leaf copy (minus the pin bit).
        for s in &slots {
            if *s != write_slot {
                prop_assert_eq!(a.get(VirtPageNum(*s as u64)).target(), before_b[*s].target());
            }
        }
    }
}
