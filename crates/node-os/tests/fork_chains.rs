//! Integration tests for chained local forks: grandchildren, CoW fan-out,
//! page-cache sharing, and teardown ordering.

use std::sync::Arc;

use cxl_mem::CxlDevice;
use node_os::addr::{PhysAddr, VirtPageNum};
use node_os::mm::{Access, FaultKind};
use node_os::vma::Protection;
use node_os::{Node, NodeConfig, Pid};

fn node() -> Node {
    Node::new(
        NodeConfig::default().with_local_mem_mib(64),
        Arc::new(CxlDevice::with_capacity_mib(16)),
    )
}

fn parent_with_heap(node: &mut Node, pages: u64) -> Pid {
    let pid = node.spawn("p0").unwrap();
    node.process_mut(pid)
        .unwrap()
        .mm
        .map_anonymous(0, pages, Protection::read_write(), "heap")
        .unwrap();
    for i in 0..pages {
        node.access(pid, i, Access::Write).unwrap();
    }
    pid
}

#[test]
fn grandchild_shares_until_write_and_isolates_after() {
    let mut n = node();
    let p0 = parent_with_heap(&mut n, 8);
    let (p1, _) = n.local_fork(p0).unwrap();
    let (p2, _) = n.local_fork(p1).unwrap();

    // All three map the same frame for page 0, refcount 3.
    let frame_of = |n: &Node, pid: Pid| {
        let Some(PhysAddr::Local(pfn)) = n
            .process(pid)
            .unwrap()
            .mm
            .translate(VirtPageNum(0))
            .target()
        else {
            panic!("page 0 should be mapped local")
        };
        pfn
    };
    let f0 = frame_of(&n, p0);
    assert_eq!(frame_of(&n, p1), f0);
    assert_eq!(frame_of(&n, p2), f0);
    assert_eq!(n.frames().refcount(f0), 3);

    // Grandchild writes: only it gets a copy.
    let o = n.access(p2, 0, Access::Write).unwrap();
    assert_eq!(o.fault, Some(FaultKind::LocalCow));
    assert_ne!(frame_of(&n, p2), f0);
    assert_eq!(frame_of(&n, p0), f0);
    assert_eq!(frame_of(&n, p1), f0);
    assert_eq!(n.frames().refcount(f0), 2);

    // Child writes: another copy; parent now sole owner.
    n.access(p1, 0, Access::Write).unwrap();
    assert_eq!(n.frames().refcount(f0), 1);
    // Parent's next write is an in-place upgrade, not a copy.
    let o = n.access(p0, 0, Access::Write).unwrap();
    assert_eq!(o.fault, Some(FaultKind::UpgradeInPlace));
}

#[test]
fn kill_order_does_not_leak_frames() {
    let mut n = node();
    let p0 = parent_with_heap(&mut n, 16);
    let (p1, _) = n.local_fork(p0).unwrap();
    let (p2, _) = n.local_fork(p0).unwrap();
    // Children write half their pages each.
    for i in 0..8 {
        n.access(p1, i, Access::Write).unwrap();
        n.access(p2, 8 + i, Access::Write).unwrap();
    }
    let used_peak = n.frames().used();
    assert_eq!(used_peak, 16 + 8 + 8);

    // Kill parent first: children keep working.
    n.kill(p0).unwrap();
    n.access(p1, 15, Access::Read).unwrap();
    n.access(p2, 0, Access::Read).unwrap();
    n.kill(p1).unwrap();
    n.kill(p2).unwrap();
    assert_eq!(n.frames().used(), 0, "all frames returned");
}

#[test]
fn forked_children_share_file_pages_through_the_page_cache() {
    let mut n = node();
    n.rootfs().create("/lib/shared.so", 16 * 4096, 9);
    let p0 = n.spawn("p0").unwrap();
    n.process_mut(p0)
        .unwrap()
        .mm
        .map_file(100, 16, Protection::read_exec(), "/lib/shared.so", 0)
        .unwrap();
    // Parent faults them in (major).
    for i in 0..16 {
        let o = n.access(p0, 100 + i, Access::Read).unwrap();
        assert_eq!(o.fault, Some(FaultKind::FileMajor));
    }
    let used_after_parent = n.frames().used();

    // Two children re-fault the same pages: minors, zero new frames.
    let (p1, _) = n.local_fork(p0).unwrap();
    let (p2, _) = n.local_fork(p0).unwrap();
    for pid in [p1, p2] {
        for i in 0..16 {
            let o = n.access(pid, 100 + i, Access::Read).unwrap();
            assert_eq!(o.fault, Some(FaultKind::FileMinor));
        }
    }
    assert_eq!(n.frames().used(), used_after_parent);

    // Page cache survives all processes; dropping it frees the frames.
    n.kill(p0).unwrap();
    n.kill(p1).unwrap();
    n.kill(p2).unwrap();
    assert_eq!(n.frames().used(), 16, "page cache holds the file pages");
    assert_eq!(n.drop_page_cache(), 16);
    assert_eq!(n.frames().used(), 0);
}

#[test]
fn fork_bomb_hits_capacity_gracefully() {
    // Fork many children, have each write one page until memory runs out:
    // the failing child reports OOM, everything else stays consistent.
    let mut n = Node::new(
        NodeConfig::default().with_local_mem_mib(1),
        Arc::new(CxlDevice::with_capacity_mib(4)),
    );
    let p0 = parent_with_heap(&mut n, 64);
    let mut children = Vec::new();
    let mut oom_seen = false;
    for i in 0..256u64 {
        let (c, _) = n.local_fork(p0).unwrap();
        match n.access(c, i % 64, Access::Write) {
            Ok(_) => children.push(c),
            Err(node_os::OsError::OutOfMemory { .. }) => {
                oom_seen = true;
                n.kill(c).unwrap();
                break;
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(oom_seen, "1 MiB node must run out");
    // Every surviving child still reads coherent data.
    for (idx, c) in children.iter().enumerate() {
        n.access(*c, (idx as u64 + 1) % 64, Access::Read).unwrap();
    }
    // Full teardown releases everything.
    for c in children {
        n.kill(c).unwrap();
    }
    n.kill(p0).unwrap();
    assert_eq!(n.frames().used(), 0);
}
