//! Property-based tests for the LLC model against a reference
//! fully-explicit set-associative LRU simulation.

use node_os::addr::{Pfn, PhysAddr};
use node_os::cache::{CacheConfig, LlcCache};
use proptest::prelude::*;

/// A transparent reference model with the same geometry and hash.
struct RefCache {
    sets: Vec<Vec<u64>>,
    assoc: usize,
}

impl RefCache {
    fn new(sets: usize, assoc: usize) -> Self {
        RefCache {
            sets: vec![Vec::new(); sets],
            assoc,
        }
    }

    fn set_index(&self, key: u64) -> usize {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize % self.sets.len()
    }

    fn access(&mut self, key: u64) -> bool {
        let idx = self.set_index(key);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|&t| t == key) {
            let t = set.remove(pos);
            set.insert(0, t);
            true
        } else {
            if set.len() >= self.assoc {
                set.pop();
            }
            set.insert(0, key);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The production cache and the reference model agree on every access
    /// outcome for arbitrary access streams over both tiers.
    #[test]
    fn cache_matches_reference_model(
        accesses in prop::collection::vec((any::<bool>(), 0u64..256), 1..400)
    ) {
        // 8 sets x 4 ways.
        let mut cache = LlcCache::new(CacheConfig {
            capacity_bytes: 32 * 4096,
            associativity: 4,
            line_bytes: 4096,
        });
        let mut reference = RefCache::new(8, 4);
        let mut hits = 0u64;
        for (cxl, page) in accesses {
            let addr = if cxl {
                PhysAddr::Cxl(cxl_mem::CxlPageId(page))
            } else {
                PhysAddr::Local(Pfn(page))
            };
            let got = cache.access(addr);
            let expected = reference.access(addr.cache_key());
            prop_assert_eq!(got, expected, "divergence at {:?}", addr);
            if got {
                hits += 1;
            }
        }
        prop_assert_eq!(cache.hits(), hits);
        prop_assert_eq!(cache.hits() + cache.misses(), cache.hits() + cache.misses());
    }

    /// Invalidation makes the next access a miss, and never affects other
    /// lines.
    #[test]
    fn invalidate_is_precise(
        pages in prop::collection::vec(0u64..64, 2..40),
        victim in any::<prop::sample::Index>(),
    ) {
        let mut cache = LlcCache::new(CacheConfig {
            capacity_bytes: 256 * 4096,
            associativity: 8,
            line_bytes: 4096,
        });
        for p in &pages {
            cache.access(PhysAddr::Local(Pfn(*p)));
        }
        let v = pages[victim.index(pages.len())];
        cache.invalidate(PhysAddr::Local(Pfn(v)));
        prop_assert!(!cache.contains(PhysAddr::Local(Pfn(v))));
        // Everything else that was resident stays resident (the cache is
        // big enough that nothing evicted in this test).
        for p in &pages {
            if *p != v {
                prop_assert!(cache.contains(PhysAddr::Local(Pfn(*p))), "lost page {p}");
            }
        }
    }
}
