//! Virtual memory areas and the attachable VMA tree.
//!
//! Serverless address spaces contain hundreds of VMAs ("their number grows
//! to the order of hundreds, due to the many dependencies of popular FaaS
//! languages such as Python", §4.2.1), which makes rebuilding the VMA tree
//! a measurable part of restore cost. CXLfork therefore checkpoints the
//! tree's **leaf blocks** to CXL memory and attaches them on restore,
//! copying a block to local memory only when a VMA in it is updated or
//! needs its file-system callbacks re-registered — both rare.
//!
//! [`VmaTree`] models that structure: an ordered sequence of blocks, each
//! holding up to [`VMAS_PER_BLOCK`] non-overlapping VMAs, where a block is
//! either node-local (mutable) or attached from a checkpoint (shared,
//! immutable, copy-on-update).

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use cxl_mem::CxlPageId;

use crate::addr::VirtPageNum;
use crate::error::OsError;
use crate::PAGE_SIZE;

/// Maximum VMAs per tree block. Sixteen ~200-byte VMA records fill most of
/// a 4 KiB checkpoint page, mirroring the paper's "checkpointed leaves" of
/// the VMA tree.
pub const VMAS_PER_BLOCK: usize = 16;

/// Page protection of a VMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Protection {
    /// Loads allowed.
    pub read: bool,
    /// Stores allowed.
    pub write: bool,
    /// Instruction fetches allowed.
    pub exec: bool,
}

impl Protection {
    /// `r--`
    pub const fn read_only() -> Self {
        Protection {
            read: true,
            write: false,
            exec: false,
        }
    }

    /// `rw-`
    pub const fn read_write() -> Self {
        Protection {
            read: true,
            write: true,
            exec: false,
        }
    }

    /// `r-x`
    pub const fn read_exec() -> Self {
        Protection {
            read: true,
            write: false,
            exec: true,
        }
    }
}

impl fmt::Display for Protection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.read { 'r' } else { '-' },
            if self.write { 'w' } else { '-' },
            if self.exec { 'x' } else { '-' }
        )
    }
}

/// What backs a VMA.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum VmaKind {
    /// Anonymous memory (heap, stack, arenas) — zero-filled on first touch.
    Anonymous,
    /// Anonymous memory shared between processes (`MAP_SHARED`). CXLfork
    /// "does not currently support shared anonymous memory mappings"
    /// (§4.1) and rejects checkpoints that contain them.
    SharedAnonymous,
    /// A private file mapping (library, runtime module). `file_start_page`
    /// is the file page mapped at the VMA's first page.
    File {
        /// Path on the shared root filesystem.
        path: String,
        /// File page backing the first page of the VMA.
        file_start_page: u64,
    },
}

impl VmaKind {
    /// `true` for file-backed VMAs.
    pub fn is_file(&self) -> bool {
        matches!(self, VmaKind::File { .. })
    }

    /// `true` for shared anonymous mappings.
    pub fn is_shared_anonymous(&self) -> bool {
        matches!(self, VmaKind::SharedAnonymous)
    }
}

/// One virtual memory area: a page range, protection, backing and label.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vma {
    /// First page (inclusive).
    pub start: u64,
    /// Last page (exclusive).
    pub end: u64,
    /// Protection bits.
    pub prot: Protection,
    /// Backing.
    pub kind: VmaKind,
    /// Human-readable label (`"heap"`, `"libpython"`, …).
    pub label: String,
}

impl Vma {
    /// Creates an anonymous VMA over `[start, end)` pages.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or inverted.
    pub fn anonymous(start: u64, end: u64, prot: Protection, label: &str) -> Self {
        assert!(start < end, "empty vma {start}..{end}");
        Vma {
            start,
            end,
            prot,
            kind: VmaKind::Anonymous,
            label: label.to_owned(),
        }
    }

    /// Creates a private file-backed VMA.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or inverted.
    pub fn file(start: u64, end: u64, prot: Protection, path: &str, file_start_page: u64) -> Self {
        assert!(start < end, "empty vma {start}..{end}");
        Vma {
            start,
            end,
            prot,
            kind: VmaKind::File {
                path: path.to_owned(),
                file_start_page,
            },
            label: path.rsplit('/').next().unwrap_or(path).to_owned(),
        }
    }

    /// `true` if `vpn` falls inside the VMA.
    #[inline]
    pub fn contains(&self, vpn: VirtPageNum) -> bool {
        (self.start..self.end).contains(&vpn.0)
    }

    /// Number of pages covered.
    #[inline]
    pub fn pages(&self) -> u64 {
        self.end - self.start
    }

    /// Number of bytes covered.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.pages() * PAGE_SIZE
    }

    /// For a file VMA, the file page backing `vpn`.
    ///
    /// Returns `None` for anonymous VMAs or out-of-range pages.
    pub fn file_page_for(&self, vpn: VirtPageNum) -> Option<(&str, u64)> {
        match &self.kind {
            VmaKind::File {
                path,
                file_start_page,
            } if self.contains(vpn) => {
                Some((path.as_str(), file_start_page + (vpn.0 - self.start)))
            }
            _ => None,
        }
    }
}

/// A leaf block of the VMA tree: up to [`VMAS_PER_BLOCK`] sorted,
/// non-overlapping VMAs.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmaBlock {
    vmas: Vec<Vma>,
}

impl VmaBlock {
    /// An empty block.
    pub fn new() -> Self {
        VmaBlock::default()
    }

    /// Builds a block from sorted VMAs.
    ///
    /// # Panics
    ///
    /// Panics if more than [`VMAS_PER_BLOCK`] VMAs are given or they are
    /// not sorted by start.
    pub fn from_vmas(vmas: Vec<Vma>) -> Self {
        assert!(vmas.len() <= VMAS_PER_BLOCK, "block overflow");
        assert!(
            vmas.windows(2).all(|w| w[0].end <= w[1].start),
            "block vmas must be sorted and disjoint"
        );
        VmaBlock { vmas }
    }

    /// The VMAs in the block.
    pub fn vmas(&self) -> &[Vma] {
        &self.vmas
    }

    /// Number of VMAs.
    pub fn len(&self) -> usize {
        self.vmas.len()
    }

    /// `true` if the block has no VMAs.
    pub fn is_empty(&self) -> bool {
        self.vmas.is_empty()
    }

    fn first_start(&self) -> Option<u64> {
        self.vmas.first().map(|v| v.start)
    }

    fn find(&self, vpn: VirtPageNum) -> Option<&Vma> {
        match self.vmas.binary_search_by(|v| {
            if v.end <= vpn.0 {
                std::cmp::Ordering::Less
            } else if v.start > vpn.0 {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(i) => Some(&self.vmas[i]),
            Err(_) => None,
        }
    }
}

/// A block position in the tree.
#[derive(Debug, Clone)]
pub enum VmaBlockSlot {
    /// A node-local, mutable block.
    Local(VmaBlock),
    /// A checkpointed, CXL-resident shared block.
    Attached {
        /// The shared block.
        block: Arc<VmaBlock>,
        /// Device page storing the block.
        backing: CxlPageId,
    },
}

impl VmaBlockSlot {
    fn block(&self) -> &VmaBlock {
        match self {
            VmaBlockSlot::Local(b) => b,
            VmaBlockSlot::Attached { block, .. } => block,
        }
    }

    /// `true` for attached (checkpoint) blocks.
    pub fn is_attached(&self) -> bool {
        matches!(self, VmaBlockSlot::Attached { .. })
    }
}

/// Outcome of an operation that may localize an attached block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VmaTouchOutcome {
    /// `true` if an attached block was copied to local memory.
    pub block_cow: bool,
}

/// The per-process VMA tree.
///
/// # Example
///
/// ```
/// use node_os::vma::{Protection, Vma, VmaTree};
/// use node_os::VirtPageNum;
///
/// # fn main() -> Result<(), node_os::OsError> {
/// let mut tree = VmaTree::new();
/// tree.insert(Vma::anonymous(16, 32, Protection::read_write(), "heap"))?;
/// assert!(tree.find(VirtPageNum(20)).is_some());
/// assert!(tree.find(VirtPageNum(40)).is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct VmaTree {
    blocks: Vec<VmaBlockSlot>,
    block_cow_events: u64,
}

impl VmaTree {
    /// An empty tree.
    pub fn new() -> Self {
        VmaTree::default()
    }

    /// Total VMAs.
    pub fn vma_count(&self) -> usize {
        self.blocks.iter().map(|b| b.block().len()).sum()
    }

    /// Total pages covered by all VMAs.
    pub fn total_pages(&self) -> u64 {
        self.iter().map(Vma::pages).sum()
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of attached blocks.
    pub fn attached_block_count(&self) -> usize {
        self.blocks.iter().filter(|b| b.is_attached()).count()
    }

    /// Block-CoW events since creation.
    pub fn block_cow_events(&self) -> u64 {
        self.block_cow_events
    }

    /// Iterates all VMAs in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Vma> {
        self.blocks.iter().flat_map(|b| b.block().vmas().iter())
    }

    /// Finds the VMA containing `vpn`.
    pub fn find(&self, vpn: VirtPageNum) -> Option<&Vma> {
        let idx = self.block_index_for(vpn.0)?;
        self.blocks[idx].block().find(vpn)
    }

    /// Index of the block that could contain page `vpn` (the last block
    /// whose first VMA starts at or before it).
    fn block_index_for(&self, vpn: u64) -> Option<usize> {
        if self.blocks.is_empty() {
            return None;
        }
        let mut idx = match self
            .blocks
            .binary_search_by_key(&vpn, |b| b.block().first_start().unwrap_or(u64::MAX))
        {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        // Skip over empty blocks defensively.
        while idx > 0 && self.blocks[idx].block().is_empty() {
            idx -= 1;
        }
        Some(idx)
    }

    /// Ensures the block containing `vpn` is node-local, copying it from
    /// the checkpoint if needed (VMA-leaf CoW + on-demand global-state
    /// reconstruction, §4.2.1). No-op if `vpn` is not covered.
    pub fn ensure_local(&mut self, vpn: VirtPageNum) -> VmaTouchOutcome {
        let Some(idx) = self.block_index_for(vpn.0) else {
            return VmaTouchOutcome::default();
        };
        if self.blocks[idx].block().find(vpn).is_none() {
            return VmaTouchOutcome::default();
        }
        self.localize(idx)
    }

    fn localize(&mut self, idx: usize) -> VmaTouchOutcome {
        if let VmaBlockSlot::Attached { block, .. } = &self.blocks[idx] {
            let copy = (**block).clone();
            self.blocks[idx] = VmaBlockSlot::Local(copy);
            self.block_cow_events += 1;
            VmaTouchOutcome { block_cow: true }
        } else {
            VmaTouchOutcome::default()
        }
    }

    /// Inserts a VMA, keeping blocks sorted/disjoint and splitting a full
    /// block in two. Attached blocks are localized first.
    ///
    /// # Errors
    ///
    /// [`OsError::MappingOverlap`] if the range intersects an existing
    /// VMA.
    pub fn insert(&mut self, vma: Vma) -> Result<VmaTouchOutcome, OsError> {
        // Overlap check against neighbours.
        for existing in self.iter() {
            if vma.start < existing.end && existing.start < vma.end {
                return Err(OsError::MappingOverlap(VirtPageNum(vma.start)));
            }
        }
        if self.blocks.is_empty() {
            self.blocks.push(VmaBlockSlot::Local(VmaBlock::new()));
        }
        let idx = self.block_index_for(vma.start).expect("non-empty blocks");
        let outcome = self.localize(idx);
        let VmaBlockSlot::Local(block) = &mut self.blocks[idx] else {
            unreachable!("localized above")
        };
        let pos = block
            .vmas
            .binary_search_by_key(&vma.start, |v| v.start)
            .unwrap_err();
        block.vmas.insert(pos, vma);
        if block.vmas.len() > VMAS_PER_BLOCK {
            let tail = block.vmas.split_off(block.vmas.len() / 2);
            self.blocks
                .insert(idx + 1, VmaBlockSlot::Local(VmaBlock { vmas: tail }));
        }
        Ok(outcome)
    }

    /// Removes the VMA containing `vpn`, returning it (whole-VMA munmap).
    /// Localizes the block if attached.
    pub fn remove(&mut self, vpn: VirtPageNum) -> Option<(Vma, VmaTouchOutcome)> {
        let idx = self.block_index_for(vpn.0)?;
        self.blocks[idx].block().find(vpn)?;
        let outcome = self.localize(idx);
        let VmaBlockSlot::Local(block) = &mut self.blocks[idx] else {
            unreachable!("localized above")
        };
        let pos = block.vmas.iter().position(|v| v.contains(vpn))?;
        let vma = block.vmas.remove(pos);
        if block.vmas.is_empty() && self.blocks.len() > 1 {
            self.blocks.remove(idx);
        }
        Some((vma, outcome))
    }

    /// Changes the protection of the VMA containing `vpn` (whole-VMA
    /// mprotect). Returns the touch outcome, or `None` if uncovered.
    pub fn set_protection(
        &mut self,
        vpn: VirtPageNum,
        prot: Protection,
    ) -> Option<VmaTouchOutcome> {
        let idx = self.block_index_for(vpn.0)?;
        self.blocks[idx].block().find(vpn)?;
        let outcome = self.localize(idx);
        let VmaBlockSlot::Local(block) = &mut self.blocks[idx] else {
            unreachable!("localized above")
        };
        let pos = block.vmas.iter().position(|v| v.contains(vpn))?;
        block.vmas[pos].prot = prot;
        Some(outcome)
    }

    /// Appends an attached (checkpointed) block. Blocks must be appended
    /// in address order; this is what restore does while walking the
    /// checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if the block is empty or out of order.
    pub fn attach_block(&mut self, block: Arc<VmaBlock>, backing: CxlPageId) {
        assert!(!block.is_empty(), "cannot attach an empty vma block");
        if let Some(last) = self.blocks.last() {
            let last_end = last.block().vmas().last().map_or(0, |v| v.end);
            assert!(
                block.first_start().unwrap_or(0) >= last_end,
                "attached blocks must be appended in address order"
            );
        }
        self.blocks.push(VmaBlockSlot::Attached { block, backing });
    }

    /// Read-only view of the block slots (for checkpoint walks).
    pub fn blocks(&self) -> &[VmaBlockSlot] {
        &self.blocks
    }
}

impl<'a> IntoIterator for &'a VmaTree {
    type Item = &'a Vma;
    type IntoIter = Box<dyn Iterator<Item = &'a Vma> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anon(start: u64, end: u64) -> Vma {
        Vma::anonymous(start, end, Protection::read_write(), "t")
    }

    #[test]
    fn insert_and_find() {
        let mut t = VmaTree::new();
        t.insert(anon(10, 20)).unwrap();
        t.insert(anon(30, 40)).unwrap();
        t.insert(anon(0, 5)).unwrap();
        assert_eq!(t.vma_count(), 3);
        assert_eq!(t.total_pages(), 10 + 10 + 5);
        assert!(t.find(VirtPageNum(0)).is_some());
        assert!(t.find(VirtPageNum(4)).is_some());
        assert!(t.find(VirtPageNum(5)).is_none());
        assert!(t.find(VirtPageNum(15)).is_some());
        assert!(t.find(VirtPageNum(25)).is_none());
        assert_eq!(t.find(VirtPageNum(35)).unwrap().start, 30);
    }

    #[test]
    fn overlap_rejected() {
        let mut t = VmaTree::new();
        t.insert(anon(10, 20)).unwrap();
        assert!(matches!(
            t.insert(anon(15, 25)),
            Err(OsError::MappingOverlap(_))
        ));
        assert!(matches!(
            t.insert(anon(5, 11)),
            Err(OsError::MappingOverlap(_))
        ));
        // Adjacent is fine.
        t.insert(anon(20, 25)).unwrap();
        t.insert(anon(5, 10)).unwrap();
        assert_eq!(t.vma_count(), 3);
    }

    #[test]
    fn blocks_split_when_full() {
        let mut t = VmaTree::new();
        for i in 0..(VMAS_PER_BLOCK as u64 + 4) {
            t.insert(anon(i * 10, i * 10 + 5)).unwrap();
        }
        assert!(t.block_count() >= 2);
        // Everything still findable and ordered.
        let starts: Vec<u64> = t.iter().map(|v| v.start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
        for i in 0..(VMAS_PER_BLOCK as u64 + 4) {
            assert!(t.find(VirtPageNum(i * 10 + 2)).is_some(), "vma {i}");
        }
    }

    #[test]
    fn remove_returns_vma() {
        let mut t = VmaTree::new();
        t.insert(anon(10, 20)).unwrap();
        t.insert(anon(30, 40)).unwrap();
        let (v, _) = t.remove(VirtPageNum(15)).unwrap();
        assert_eq!(v.start, 10);
        assert!(t.find(VirtPageNum(15)).is_none());
        assert!(t.remove(VirtPageNum(15)).is_none());
        assert_eq!(t.vma_count(), 1);
    }

    #[test]
    fn attached_block_is_shared_until_touched() {
        let shared = Arc::new(VmaBlock::from_vmas(vec![anon(0, 8), anon(8, 16)]));
        let mut a = VmaTree::new();
        let mut b = VmaTree::new();
        a.attach_block(Arc::clone(&shared), CxlPageId(1));
        b.attach_block(Arc::clone(&shared), CxlPageId(1));
        assert_eq!(a.attached_block_count(), 1);
        assert!(a.find(VirtPageNum(3)).is_some());

        // Mutation in A localizes A's copy only.
        let o = a
            .set_protection(VirtPageNum(3), Protection::read_only())
            .unwrap();
        assert!(o.block_cow);
        assert_eq!(a.block_cow_events(), 1);
        assert_eq!(a.attached_block_count(), 0);
        assert!(!a.find(VirtPageNum(3)).unwrap().prot.write);
        assert!(
            b.find(VirtPageNum(3)).unwrap().prot.write,
            "sharer unaffected"
        );
        assert_eq!(shared.vmas()[0].prot, Protection::read_write());
    }

    #[test]
    fn ensure_local_is_noop_for_local_or_uncovered() {
        let mut t = VmaTree::new();
        t.insert(anon(0, 4)).unwrap();
        assert!(!t.ensure_local(VirtPageNum(1)).block_cow);
        assert!(!t.ensure_local(VirtPageNum(100)).block_cow);
    }

    #[test]
    fn insert_after_attach_localizes() {
        let shared = Arc::new(VmaBlock::from_vmas(vec![anon(0, 8)]));
        let mut t = VmaTree::new();
        t.attach_block(shared, CxlPageId(0));
        let o = t.insert(anon(100, 110)).unwrap();
        assert!(o.block_cow);
        assert_eq!(t.vma_count(), 2);
    }

    #[test]
    #[should_panic(expected = "address order")]
    fn attach_out_of_order_panics() {
        let mut t = VmaTree::new();
        t.attach_block(
            Arc::new(VmaBlock::from_vmas(vec![anon(100, 110)])),
            CxlPageId(0),
        );
        t.attach_block(
            Arc::new(VmaBlock::from_vmas(vec![anon(0, 10)])),
            CxlPageId(1),
        );
    }

    #[test]
    fn file_vma_maps_file_pages() {
        let v = Vma::file(100, 110, Protection::read_exec(), "/usr/lib/x.so", 5);
        assert_eq!(v.label, "x.so");
        assert!(v.kind.is_file());
        assert_eq!(
            v.file_page_for(VirtPageNum(103)),
            Some(("/usr/lib/x.so", 8))
        );
        assert_eq!(v.file_page_for(VirtPageNum(99)), None);
        assert_eq!(anon(0, 1).file_page_for(VirtPageNum(0)), None);
    }

    #[test]
    fn protection_display() {
        assert_eq!(Protection::read_write().to_string(), "rw-");
        assert_eq!(Protection::read_exec().to_string(), "r-x");
        assert_eq!(Protection::read_only().to_string(), "r--");
    }

    #[test]
    #[should_panic(expected = "empty vma")]
    fn empty_vma_rejected() {
        let _ = anon(5, 5);
    }
}
