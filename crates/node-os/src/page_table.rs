//! A 4-level page-table radix tree with attachable, shareable leaves.
//!
//! This is the structure CXLfork's headline optimization manipulates
//! (§4.2.1): a restore allocates and initializes **only the upper levels**
//! of the tree in node-local memory and *attaches* the checkpointed leaf
//! tables, which live in CXL memory and are shared — immutably — by every
//! process cloned from the same checkpoint, across nodes.
//!
//! Two kinds of mutation are possible on an attached leaf:
//!
//! * **Entry updates** (mapping changes, CoW resolution) first copy the
//!   whole 512-entry leaf to local memory — a *leaf CoW*, signalled to the
//!   caller through [`SetOutcome`] so the fault path can charge its cost.
//!   This models the paper's "unused bit in the PTE structure to track any
//!   OS attempt to update them … it lazily copies the entire leaf to local
//!   memory" (§4.2.1).
//! * **Accessed-bit updates**, which the paper explicitly allows on shared
//!   CXL PTEs ("its page-table walks will update the A bits on the CXL
//!   PTEs", §4.3). These go to an atomic side bitmap ([`AccessBits`])
//!   attached to every leaf, so they never force a copy, and user space can
//!   reset them to re-estimate working sets.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cxl_mem::CxlPageId;

use crate::addr::VirtPageNum;
use crate::pte::{Pte, PteFlags};
use crate::PTES_PER_LEAF;

/// Atomic per-slot Accessed bits for one leaf (512 bits in 8 words).
///
/// These model the hardware A-bit updates that page walks perform on
/// checkpointed (shared, otherwise-immutable) PTE leaves.
#[derive(Default)]
pub struct AccessBits {
    words: [AtomicU64; 8],
}

impl AccessBits {
    /// All-clear bits.
    pub fn new() -> Self {
        AccessBits::default()
    }

    #[inline]
    fn split(slot: usize) -> (usize, u64) {
        debug_assert!(slot < PTES_PER_LEAF);
        (slot / 64, 1u64 << (slot % 64))
    }

    /// Sets the bit for `slot`.
    #[inline]
    pub fn set(&self, slot: usize) {
        let (w, m) = Self::split(slot);
        self.words[w].fetch_or(m, Ordering::Relaxed);
    }

    /// Reads the bit for `slot`.
    #[inline]
    pub fn get(&self, slot: usize) -> bool {
        let (w, m) = Self::split(slot);
        self.words[w].load(Ordering::Relaxed) & m != 0
    }

    /// Clears every bit (the user-space A-bit reset interface, §4.3).
    pub fn clear_all(&self) {
        for w in &self.words {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> u32 {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones())
            .sum()
    }
}

impl Clone for AccessBits {
    fn clone(&self) -> Self {
        let out = AccessBits::new();
        for (i, w) in self.words.iter().enumerate() {
            out.words[i].store(w.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        out
    }
}

impl fmt::Debug for AccessBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AccessBits({} set)", self.count())
    }
}

/// One page-table leaf: 512 PTEs plus runtime A bits and user hot-page
/// hint bits.
#[derive(Debug, Clone)]
pub struct PtLeaf {
    entries: Vec<Pte>,
    accessed: AccessBits,
    hot: AccessBits,
}

impl PtLeaf {
    /// An all-empty leaf.
    pub fn new() -> Self {
        PtLeaf {
            entries: vec![Pte::EMPTY; PTES_PER_LEAF],
            accessed: AccessBits::new(),
            hot: AccessBits::new(),
        }
    }

    /// Reads the PTE at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 512`.
    #[inline]
    pub fn get(&self, slot: usize) -> Pte {
        self.entries[slot]
    }

    /// Writes the PTE at `slot` (owned leaves only; attached leaves go
    /// through leaf CoW in [`PageTable::set`]).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 512`.
    #[inline]
    pub fn set(&mut self, slot: usize, pte: Pte) {
        self.entries[slot] = pte;
    }

    /// The runtime Accessed-bit bitmap.
    #[inline]
    pub fn access_bits(&self) -> &AccessBits {
        &self.accessed
    }

    /// The user-populated hot-page hint bitmap (§4.3 "User-Identified Hot
    /// Pages"): profilers write it through a dedicated interface, and
    /// hybrid-tiering restores consult it alongside the checkpointed A
    /// bits. Writable even on shared (checkpointed) leaves.
    #[inline]
    pub fn hot_bits(&self) -> &AccessBits {
        &self.hot
    }

    /// Number of present entries.
    pub fn present_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_present()).count()
    }

    /// Number of non-empty entries (present or armed).
    pub fn populated_count(&self) -> usize {
        self.entries.iter().filter(|e| !e.is_empty()).count()
    }

    /// Iterates `(slot, pte)` over non-empty entries.
    pub fn iter_populated(&self) -> impl Iterator<Item = (usize, Pte)> + '_ {
        self.entries
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, e)| !e.is_empty())
    }

    /// Returns a copy whose entries' `ACCESSED` flags reflect the runtime
    /// A-bit bitmap — and *only* it. Used when checkpointing: the
    /// harvested flags become the checkpoint's access-pattern record
    /// (§4.1). Any `ACCESSED` flag already present in the entries (e.g.
    /// the previous generation's record, baked into an attached
    /// checkpoint leaf) is discarded, so re-checkpointing a restored
    /// process captures *its* steady state, not its ancestor's.
    pub fn harvested(&self) -> PtLeaf {
        let mut out = self.clone();
        for slot in 0..PTES_PER_LEAF {
            let e = out.entries[slot];
            if e.is_empty() {
                continue;
            }
            out.entries[slot] = if self.accessed.get(slot) {
                e.with_flags(PteFlags::ACCESSED)
            } else {
                e.without_flags(PteFlags::ACCESSED)
            };
        }
        out
    }
}

impl Default for PtLeaf {
    fn default() -> Self {
        PtLeaf::new()
    }
}

/// A checkpointed leaf attached from CXL memory.
#[derive(Debug, Clone)]
pub struct AttachedLeaf {
    /// The shared, immutable leaf (its A-bit bitmap stays writable).
    pub leaf: Arc<PtLeaf>,
    /// The device page that physically stores this leaf (one leaf is
    /// exactly one 4 KiB page of 512 × 8-byte PTEs).
    pub backing: CxlPageId,
}

/// A leaf position in the tree: node-local and mutable, or attached.
#[derive(Debug, Clone)]
pub enum LeafSlot {
    /// An ordinary node-local leaf.
    Local(PtLeaf),
    /// A checkpointed, CXL-resident shared leaf.
    Attached(AttachedLeaf),
}

impl LeafSlot {
    /// Reads a PTE regardless of locality.
    #[inline]
    pub fn get(&self, slot: usize) -> Pte {
        match self {
            LeafSlot::Local(l) => l.get(slot),
            LeafSlot::Attached(a) => a.leaf.get(slot),
        }
    }

    /// The leaf's runtime A bits.
    #[inline]
    pub fn access_bits(&self) -> &AccessBits {
        match self {
            LeafSlot::Local(l) => l.access_bits(),
            LeafSlot::Attached(a) => a.leaf.access_bits(),
        }
    }

    /// `true` for an attached (checkpoint) leaf.
    #[inline]
    pub fn is_attached(&self) -> bool {
        matches!(self, LeafSlot::Attached(_))
    }
}

/// Result of a [`PageTable::set`] walk, for cost accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SetOutcome {
    /// Upper-level directory pages created by this walk.
    pub dirs_created: u64,
    /// `true` if an attached leaf had to be copied to local memory first
    /// (a page-table leaf CoW, §4.2.1).
    pub leaf_cow: bool,
    /// `true` if a fresh (empty) leaf was allocated.
    pub leaf_created: bool,
}

#[derive(Debug, Default)]
struct DirLevel {
    children: std::collections::BTreeMap<u16, DirEntry>,
}

#[derive(Debug)]
enum DirEntry {
    Dir(Box<DirLevel>),
    Leaf(LeafSlot),
}

/// A 4-level page table.
///
/// # Example
///
/// ```
/// use node_os::page_table::PageTable;
/// use node_os::pte::{Pte, PteFlags};
/// use node_os::{PhysAddr, Pfn, VirtPageNum};
///
/// let mut pt = PageTable::new();
/// let vpn = VirtPageNum(0x1234);
/// let pte = Pte::mapped(PhysAddr::Local(Pfn(7)), PteFlags::PRESENT);
/// pt.set(vpn, pte);
/// assert_eq!(pt.get(vpn), pte);
/// assert_eq!(pt.get(VirtPageNum(0x9999)), Pte::EMPTY);
/// ```
#[derive(Debug, Default)]
pub struct PageTable {
    root: DirLevel,
    dir_pages: u64,
    leaf_cow_events: u64,
}

impl PageTable {
    /// An empty table (root directory only).
    pub fn new() -> Self {
        PageTable {
            root: DirLevel::default(),
            dir_pages: 1, // the root page
            leaf_cow_events: 0,
        }
    }

    /// Reads the PTE for `vpn` ([`Pte::EMPTY`] if unmapped). Never touches
    /// A bits — use [`PageTable::mark_accessed`] for the access side
    /// effect.
    pub fn get(&self, vpn: VirtPageNum) -> Pte {
        match self.leaf_for(vpn) {
            Some(slot) => slot.get(vpn.leaf_slot()),
            None => Pte::EMPTY,
        }
    }

    /// Returns the leaf covering `vpn`, if any.
    pub fn leaf_for(&self, vpn: VirtPageNum) -> Option<&LeafSlot> {
        let l4 = self.root.children.get(&vpn.index(4))?;
        let DirEntry::Dir(l3) = l4 else { return None };
        let l3e = l3.children.get(&vpn.index(3))?;
        let DirEntry::Dir(l2) = l3e else { return None };
        match l2.children.get(&vpn.index(2))? {
            DirEntry::Leaf(slot) => Some(slot),
            DirEntry::Dir(_) => None,
        }
    }

    /// Writes the PTE for `vpn`, creating directories and the leaf as
    /// needed. If the covering leaf is attached, it is first copied to
    /// local memory (leaf CoW) — the outcome reports this so the caller can
    /// charge the copy.
    pub fn set(&mut self, vpn: VirtPageNum, pte: Pte) -> SetOutcome {
        let mut outcome = SetOutcome::default();
        let l3 = match self.root.children.entry(vpn.index(4)).or_insert_with(|| {
            outcome.dirs_created += 1;
            DirEntry::Dir(Box::default())
        }) {
            DirEntry::Dir(d) => d,
            DirEntry::Leaf(_) => unreachable!("level-4 entries are always directories"),
        };
        let l2 = match l3.children.entry(vpn.index(3)).or_insert_with(|| {
            outcome.dirs_created += 1;
            DirEntry::Dir(Box::default())
        }) {
            DirEntry::Dir(d) => d,
            DirEntry::Leaf(_) => unreachable!("level-3 entries are always directories"),
        };
        let entry = l2.children.entry(vpn.index(2)).or_insert_with(|| {
            outcome.leaf_created = true;
            DirEntry::Leaf(LeafSlot::Local(PtLeaf::new()))
        });
        let slot = match entry {
            DirEntry::Leaf(slot) => slot,
            DirEntry::Dir(_) => unreachable!("level-2 entries are always leaves"),
        };
        if let LeafSlot::Attached(att) = slot {
            // Leaf CoW: copy entries (dropping the checkpoint pin) and the
            // runtime A bits to a private local leaf.
            let mut copy = (*att.leaf).clone();
            for i in 0..PTES_PER_LEAF {
                let e = copy.get(i);
                if !e.is_empty() {
                    copy.set(i, e.without_flags(PteFlags::CKPT_PIN));
                }
            }
            *slot = LeafSlot::Local(copy);
            outcome.leaf_cow = true;
            self.leaf_cow_events += 1;
        }
        if let LeafSlot::Local(leaf) = slot {
            leaf.set(vpn.leaf_slot(), pte);
        }
        self.dir_pages += outcome.dirs_created;
        outcome
    }

    /// Clears the PTE for `vpn`, returning the previous entry. Triggers a
    /// leaf CoW if the covering leaf is attached.
    pub fn unmap(&mut self, vpn: VirtPageNum) -> (Pte, SetOutcome) {
        let old = self.get(vpn);
        if old.is_empty() {
            return (old, SetOutcome::default());
        }
        let outcome = self.set(vpn, Pte::EMPTY);
        (old, outcome)
    }

    /// Sets the runtime A bit for `vpn` (no-op when unmapped). Works on
    /// attached leaves without copying them.
    pub fn mark_accessed(&self, vpn: VirtPageNum) {
        if let Some(slot) = self.leaf_for(vpn) {
            slot.access_bits().set(vpn.leaf_slot());
        }
    }

    /// Reads the runtime A bit for `vpn`.
    pub fn is_accessed(&self, vpn: VirtPageNum) -> bool {
        self.leaf_for(vpn)
            .is_some_and(|slot| slot.access_bits().get(vpn.leaf_slot()))
    }

    /// Sets the D bit in the entry for `vpn`.
    ///
    /// Only meaningful for local leaves (writable mappings always live in
    /// local leaves after CoW resolution); silently ignored on attached
    /// leaves, whose D bits "are never updated, as these pages are attached
    /// as read-only" (§4.3).
    pub fn mark_dirty(&mut self, vpn: VirtPageNum) {
        let slot_idx = vpn.leaf_slot();
        if let Some(LeafSlot::Local(leaf)) = self.leaf_for_mut(vpn) {
            let e = leaf.get(slot_idx);
            if !e.is_empty() {
                leaf.set(slot_idx, e.with_flags(PteFlags::DIRTY));
            }
        }
    }

    fn leaf_for_mut(&mut self, vpn: VirtPageNum) -> Option<&mut LeafSlot> {
        let l4 = self.root.children.get_mut(&vpn.index(4))?;
        let DirEntry::Dir(l3) = l4 else { return None };
        let l3e = l3.children.get_mut(&vpn.index(3))?;
        let DirEntry::Dir(l2) = l3e else { return None };
        match l2.children.get_mut(&vpn.index(2))? {
            DirEntry::Leaf(slot) => Some(slot),
            DirEntry::Dir(_) => None,
        }
    }

    /// Attaches a checkpointed leaf at `leaf_index` (= `vpn >> 9`),
    /// replacing anything previously there. Returns the number of
    /// directory pages created on the way down — the only allocation the
    /// constant-time restore pays (§4.2.1).
    pub fn attach_leaf(&mut self, leaf_index: u64, attached: AttachedLeaf) -> u64 {
        let vpn = VirtPageNum(leaf_index << 9);
        let mut dirs_created = 0;
        let l3 = match self.root.children.entry(vpn.index(4)).or_insert_with(|| {
            dirs_created += 1;
            DirEntry::Dir(Box::default())
        }) {
            DirEntry::Dir(d) => d,
            DirEntry::Leaf(_) => unreachable!(),
        };
        let l2 = match l3.children.entry(vpn.index(3)).or_insert_with(|| {
            dirs_created += 1;
            DirEntry::Dir(Box::default())
        }) {
            DirEntry::Dir(d) => d,
            DirEntry::Leaf(_) => unreachable!(),
        };
        l2.children
            .insert(vpn.index(2), DirEntry::Leaf(LeafSlot::Attached(attached)));
        self.dir_pages += dirs_created;
        dirs_created
    }

    /// Installs a local leaf wholesale at `leaf_index` (used by hybrid
    /// tiering, which materializes per-policy local copies of checkpoint
    /// leaves at restore time). Returns directories created.
    pub fn install_local_leaf(&mut self, leaf_index: u64, leaf: PtLeaf) -> u64 {
        let vpn = VirtPageNum(leaf_index << 9);
        let mut dirs_created = 0;
        let l3 = match self.root.children.entry(vpn.index(4)).or_insert_with(|| {
            dirs_created += 1;
            DirEntry::Dir(Box::default())
        }) {
            DirEntry::Dir(d) => d,
            DirEntry::Leaf(_) => unreachable!(),
        };
        let l2 = match l3.children.entry(vpn.index(3)).or_insert_with(|| {
            dirs_created += 1;
            DirEntry::Dir(Box::default())
        }) {
            DirEntry::Dir(d) => d,
            DirEntry::Leaf(_) => unreachable!(),
        };
        l2.children
            .insert(vpn.index(2), DirEntry::Leaf(LeafSlot::Local(leaf)));
        self.dir_pages += dirs_created;
        dirs_created
    }

    /// Iterates `(leaf_index, &LeafSlot)` over all leaves.
    pub fn leaves(&self) -> Vec<(u64, &LeafSlot)> {
        let mut out = Vec::new();
        for (i4, e4) in &self.root.children {
            let DirEntry::Dir(l3) = e4 else { continue };
            for (i3, e3) in &l3.children {
                let DirEntry::Dir(l2) = e3 else { continue };
                for (i2, e2) in &l2.children {
                    if let DirEntry::Leaf(slot) = e2 {
                        let leaf_index = ((*i4 as u64) << 18) | ((*i3 as u64) << 9) | (*i2 as u64);
                        out.push((leaf_index, slot));
                    }
                }
            }
        }
        out
    }

    /// Iterates `(vpn, pte)` over all populated (present or armed)
    /// entries.
    pub fn iter_populated(&self) -> Vec<(VirtPageNum, Pte)> {
        let mut out = Vec::new();
        for (leaf_index, slot) in self.leaves() {
            let leaf: &PtLeaf = match slot {
                LeafSlot::Local(l) => l,
                LeafSlot::Attached(a) => &a.leaf,
            };
            for (s, pte) in leaf.iter_populated() {
                out.push((VirtPageNum((leaf_index << 9) | s as u64), pte));
            }
        }
        out
    }

    /// Number of directory (upper-level) pages, including the root.
    pub fn dir_page_count(&self) -> u64 {
        self.dir_pages
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaves().len()
    }

    /// Number of currently attached (checkpoint) leaves.
    pub fn attached_leaf_count(&self) -> usize {
        self.leaves()
            .iter()
            .filter(|(_, s)| s.is_attached())
            .count()
    }

    /// Leaf-CoW events since creation.
    pub fn leaf_cow_events(&self) -> u64 {
        self.leaf_cow_events
    }

    /// Clears the Accessed and Dirty record of every mapping: runtime A
    /// bits on all leaves, and D flags in local leaves. CXLporter invokes
    /// this after a function's first invocation so the bits capture the
    /// steady-state access pattern rather than initialization (§5).
    /// Attached leaves only have their (side-band) A bits cleared — their
    /// entries are immutable.
    pub fn clear_ad_bits(&mut self) {
        fn walk(dir: &mut DirLevel) {
            for entry in dir.children.values_mut() {
                match entry {
                    DirEntry::Dir(d) => walk(d),
                    DirEntry::Leaf(LeafSlot::Local(leaf)) => {
                        leaf.access_bits().clear_all();
                        for slot in 0..PTES_PER_LEAF {
                            let e = leaf.get(slot);
                            if !e.is_empty() {
                                leaf.set(
                                    slot,
                                    e.without_flags(PteFlags::DIRTY | PteFlags::ACCESSED),
                                );
                            }
                        }
                    }
                    DirEntry::Leaf(LeafSlot::Attached(a)) => {
                        a.leaf.access_bits().clear_all();
                    }
                }
            }
        }
        walk(&mut self.root);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Pfn, PhysAddr};

    fn pte(pfn: u64) -> Pte {
        Pte::mapped(
            PhysAddr::Local(Pfn(pfn)),
            PteFlags::PRESENT | PteFlags::WRITABLE,
        )
    }

    #[test]
    fn set_get_roundtrip_across_levels() {
        let mut pt = PageTable::new();
        // Spread VPNs across distinct L4/L3/L2 indices.
        let vpns = [
            0u64,
            1,
            511,
            512,
            1 << 18,
            (1 << 27) | 5,
            (35 << 27) | (7 << 18) | 123,
        ];
        for (i, &v) in vpns.iter().enumerate() {
            pt.set(VirtPageNum(v), pte(i as u64));
        }
        for (i, &v) in vpns.iter().enumerate() {
            assert_eq!(pt.get(VirtPageNum(v)), pte(i as u64), "vpn {v:#x}");
        }
        assert_eq!(pt.get(VirtPageNum(0xdead_beef)), Pte::EMPTY);
    }

    #[test]
    fn set_reports_created_structures() {
        let mut pt = PageTable::new();
        let o1 = pt.set(VirtPageNum(0), pte(1));
        assert_eq!(o1.dirs_created, 2); // L3 + L2 dirs under the root
        assert!(o1.leaf_created);
        assert!(!o1.leaf_cow);
        let o2 = pt.set(VirtPageNum(1), pte(2));
        assert_eq!(o2.dirs_created, 0);
        assert!(!o2.leaf_created);
        assert_eq!(pt.dir_page_count(), 3); // root + L3 + L2
    }

    #[test]
    fn unmap_returns_old_entry() {
        let mut pt = PageTable::new();
        pt.set(VirtPageNum(9), pte(5));
        let (old, _) = pt.unmap(VirtPageNum(9));
        assert_eq!(old, pte(5));
        assert_eq!(pt.get(VirtPageNum(9)), Pte::EMPTY);
        let (old2, o2) = pt.unmap(VirtPageNum(9));
        assert!(old2.is_empty());
        assert_eq!(o2, SetOutcome::default());
    }

    #[test]
    fn attached_leaf_reads_through() {
        let mut shared = PtLeaf::new();
        shared.set(3, pte(77).with_flags(PteFlags::CKPT_PIN));
        let shared = Arc::new(shared);
        let mut pt = PageTable::new();
        let dirs = pt.attach_leaf(
            0,
            AttachedLeaf {
                leaf: Arc::clone(&shared),
                backing: CxlPageId(1),
            },
        );
        assert_eq!(dirs, 2);
        assert_eq!(pt.get(VirtPageNum(3)).target(), pte(77).target());
        assert_eq!(pt.attached_leaf_count(), 1);
    }

    #[test]
    fn write_to_attached_leaf_triggers_leaf_cow_and_preserves_sharers() {
        let mut shared = PtLeaf::new();
        shared.set(0, pte(10).with_flags(PteFlags::CKPT_PIN));
        shared.set(1, pte(11).with_flags(PteFlags::CKPT_PIN));
        let shared = Arc::new(shared);

        let mut pt_a = PageTable::new();
        let mut pt_b = PageTable::new();
        for pt in [&mut pt_a, &mut pt_b] {
            pt.attach_leaf(
                0,
                AttachedLeaf {
                    leaf: Arc::clone(&shared),
                    backing: CxlPageId(1),
                },
            );
        }

        let o = pt_a.set(VirtPageNum(0), pte(99));
        assert!(o.leaf_cow);
        assert_eq!(pt_a.leaf_cow_events(), 1);
        assert_eq!(pt_a.get(VirtPageNum(0)), pte(99));
        // The copy keeps the untouched neighbour entry, minus the pin.
        assert_eq!(pt_a.get(VirtPageNum(1)).target(), pte(11).target());
        assert!(!pt_a
            .get(VirtPageNum(1))
            .flags()
            .contains(PteFlags::CKPT_PIN));
        // The other sharer and the checkpoint itself are unaffected.
        assert_eq!(pt_b.get(VirtPageNum(0)).target(), pte(10).target());
        assert!(pt_b.leaf_for(VirtPageNum(0)).unwrap().is_attached());
        assert_eq!(shared.get(0).target(), pte(10).target());
        // Second write to the same (now local) leaf: no second CoW.
        let o2 = pt_a.set(VirtPageNum(5), pte(55));
        assert!(!o2.leaf_cow);
    }

    #[test]
    fn accessed_bits_work_on_attached_leaves_without_cow() {
        let mut shared = PtLeaf::new();
        shared.set(7, pte(1));
        let shared = Arc::new(shared);
        let mut pt = PageTable::new();
        pt.attach_leaf(
            0,
            AttachedLeaf {
                leaf: Arc::clone(&shared),
                backing: CxlPageId(0),
            },
        );
        assert!(!pt.is_accessed(VirtPageNum(7)));
        pt.mark_accessed(VirtPageNum(7));
        assert!(pt.is_accessed(VirtPageNum(7)));
        // The A bit is visible through the shared checkpoint leaf (hybrid
        // tiering's continuous working-set monitor reads it there).
        assert!(shared.access_bits().get(7));
        // And user space can reset it.
        shared.access_bits().clear_all();
        assert!(!pt.is_accessed(VirtPageNum(7)));
        // No leaf CoW happened.
        assert_eq!(pt.leaf_cow_events(), 0);
        assert!(pt.leaf_for(VirtPageNum(7)).unwrap().is_attached());
    }

    #[test]
    fn dirty_marking_only_touches_local_leaves() {
        let mut pt = PageTable::new();
        pt.set(VirtPageNum(4), pte(4));
        pt.mark_dirty(VirtPageNum(4));
        assert!(pt.get(VirtPageNum(4)).is_dirty());

        let mut shared = PtLeaf::new();
        shared.set(0, pte(1));
        let shared = Arc::new(shared);
        let mut pt2 = PageTable::new();
        pt2.attach_leaf(
            1,
            AttachedLeaf {
                leaf: Arc::clone(&shared),
                backing: CxlPageId(0),
            },
        );
        pt2.mark_dirty(VirtPageNum(512));
        assert!(
            !pt2.get(VirtPageNum(512)).is_dirty(),
            "attached D bits never update"
        );
    }

    #[test]
    fn harvested_folds_runtime_access_into_flags() {
        let mut leaf = PtLeaf::new();
        leaf.set(2, pte(2));
        leaf.set(3, pte(3));
        // Stale record from a previous generation: must be discarded.
        leaf.set(4, pte(4).with_flags(PteFlags::ACCESSED));
        leaf.access_bits().set(2);
        leaf.access_bits().set(100); // empty slot: must not materialize
        let h = leaf.harvested();
        assert!(h.get(2).is_accessed());
        assert!(!h.get(3).is_accessed());
        assert!(!h.get(4).is_accessed(), "stale generation A discarded");
        assert!(h.get(100).is_empty());
    }

    #[test]
    fn iter_populated_reconstructs_vpns() {
        let mut pt = PageTable::new();
        let vpns = [5u64, 600, (2 << 18) + 9];
        for &v in &vpns {
            pt.set(VirtPageNum(v), pte(v));
        }
        let mut got: Vec<u64> = pt.iter_populated().iter().map(|(v, _)| v.0).collect();
        got.sort_unstable();
        assert_eq!(got, vec![5, 600, (2 << 18) + 9]);
        assert_eq!(pt.leaf_count(), 3);
    }

    #[test]
    fn install_local_leaf_replaces_slot() {
        let mut pt = PageTable::new();
        let mut leaf = PtLeaf::new();
        leaf.set(1, pte(42));
        pt.install_local_leaf(2, leaf);
        assert_eq!(pt.get(VirtPageNum((2 << 9) | 1)), pte(42));
        assert_eq!(pt.attached_leaf_count(), 0);
    }

    #[test]
    fn access_bits_count_and_clear() {
        let b = AccessBits::new();
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(511);
        assert_eq!(b.count(), 4);
        assert!(b.get(63) && b.get(64));
        assert!(!b.get(1));
        let c = b.clone();
        b.clear_all();
        assert_eq!(b.count(), 0);
        assert_eq!(c.count(), 4, "clone is independent");
    }
}
