//! The node runtime: clock, memory, cache, process table.

use std::collections::BTreeMap;
use std::sync::Arc;

use simclock::stats::Counters;
use simclock::{LatencyModel, SimClock, SimDuration, SimTime};

use cxl_mem::{CxlDevice, NodeId};

use crate::addr::Pid;
use crate::cache::{CacheConfig, LlcCache};
use crate::error::OsError;
use crate::frame::FrameAllocator;
use crate::fs::SharedFs;
use crate::mm::{Access, AccessOutcome, AddressSpace, MmContext};
use crate::pagecache::PageCache;
use crate::process::Task;

/// Configuration for one simulated node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Fabric node id.
    pub id: u32,
    /// Local DRAM capacity in MiB (the evaluation VMs have tens of GiB;
    /// Fig. 10c shrinks this to 50 % / 25 %).
    pub local_mem_mib: u64,
    /// LLC geometry.
    pub cache: CacheConfig,
    /// Latency model.
    pub model: LatencyModel,
    /// Sequential read-ahead window for file major faults, in pages
    /// (including the faulting page). The default of `1` disables
    /// read-ahead; larger windows warm the page cache with the following
    /// pages of the file on each major fault.
    pub file_readahead_pages: u64,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            id: 0,
            local_mem_mib: 8192,
            cache: CacheConfig::default(),
            model: LatencyModel::calibrated(),
            file_readahead_pages: 1,
        }
    }
}

impl NodeConfig {
    /// Sets the node id.
    pub fn with_id(mut self, id: u32) -> Self {
        self.id = id;
        self
    }

    /// Sets the local memory capacity in MiB.
    pub fn with_local_mem_mib(mut self, mib: u64) -> Self {
        self.local_mem_mib = mib;
        self
    }

    /// Sets the latency model.
    pub fn with_model(mut self, model: LatencyModel) -> Self {
        self.model = model;
        self
    }

    /// Sets the cache geometry.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Sets the file major-fault read-ahead window (`1` = off).
    pub fn with_file_readahead_pages(mut self, pages: u64) -> Self {
        self.file_readahead_pages = pages.max(1);
        self
    }
}

/// One process: task + address space.
#[derive(Debug)]
pub struct Process {
    /// Task structure (registers, fds, namespaces, scheduling).
    pub task: Task,
    /// The address space.
    pub mm: AddressSpace,
}

/// A simulated compute node attached to the CXL fabric.
///
/// Owns a virtual clock, a frame allocator, an LLC model and a process
/// table; shares the [`CxlDevice`] and [`SharedFs`] with its peers.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use cxl_mem::CxlDevice;
/// use node_os::{Node, NodeConfig, mm::Access, vma::Protection};
///
/// # fn main() -> Result<(), node_os::OsError> {
/// let device = Arc::new(CxlDevice::with_capacity_mib(64));
/// let mut node = Node::new(NodeConfig::default(), device);
/// let pid = node.spawn("worker")?;
/// node.process_mut(pid)?.mm.map_anonymous(0, 16, Protection::read_write(), "heap")?;
/// node.access(pid, 0, Access::Write)?;
/// assert_eq!(node.counters().get("fault_anon_zero_fill"), 1);
/// node.kill(pid)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Node {
    id: NodeId,
    clock: SimClock,
    model: LatencyModel,
    frames: FrameAllocator,
    cache: LlcCache,
    device: Arc<CxlDevice>,
    rootfs: Arc<SharedFs>,
    page_cache: PageCache,
    processes: BTreeMap<Pid, Process>,
    next_pid: u64,
    counters: Counters,
    file_readahead_pages: u64,
}

impl Node {
    /// Creates a node with its own private root filesystem (single-node
    /// tests). Cluster simulations should use [`Node::with_rootfs`] so all
    /// nodes see identical paths (§4.1).
    pub fn new(config: NodeConfig, device: Arc<CxlDevice>) -> Self {
        Node::with_rootfs(config, device, Arc::new(SharedFs::new()))
    }

    /// Creates a node sharing `rootfs` with its peers.
    pub fn with_rootfs(config: NodeConfig, device: Arc<CxlDevice>, rootfs: Arc<SharedFs>) -> Self {
        Node {
            id: NodeId(config.id),
            clock: SimClock::new(),
            frames: FrameAllocator::with_capacity_mib(config.local_mem_mib),
            cache: LlcCache::new(config.cache),
            model: config.model,
            device,
            rootfs,
            page_cache: PageCache::new(),
            processes: BTreeMap::new(),
            next_pid: 1,
            counters: Counters::new(),
            file_readahead_pages: config.file_readahead_pages.max(1),
        }
    }

    /// The node's fabric id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current virtual time on this node.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The node's clock.
    pub fn clock_mut(&mut self) -> &mut SimClock {
        &mut self.clock
    }

    /// The latency model.
    pub fn model(&self) -> &LatencyModel {
        &self.model
    }

    /// The shared CXL device.
    pub fn device(&self) -> &Arc<CxlDevice> {
        &self.device
    }

    /// The shared root filesystem.
    pub fn rootfs(&self) -> &Arc<SharedFs> {
        &self.rootfs
    }

    /// The local frame allocator.
    pub fn frames(&self) -> &FrameAllocator {
        &self.frames
    }

    /// Mutable access to the frame allocator (capacity experiments).
    pub fn frames_mut(&mut self) -> &mut FrameAllocator {
        &mut self.frames
    }

    /// The LLC model.
    pub fn cache(&self) -> &LlcCache {
        &self.cache
    }

    /// Mutable access to the LLC (flush between phases).
    pub fn cache_mut(&mut self) -> &mut LlcCache {
        &mut self.cache
    }

    /// Event counters (faults by kind, cache hits/misses).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Resets the event counters.
    pub fn reset_counters(&mut self) {
        self.counters = Counters::new();
    }

    /// Increments a named event counter (fork mechanisms record their
    /// operations here).
    pub fn counters_note(&mut self, name: &str) {
        self.counters.incr(name);
    }

    /// Adds `n` to a named event counter (e.g. retry totals).
    pub fn counters_add(&mut self, name: &str, n: u64) {
        self.counters.add(name, n);
    }

    /// The node's page cache.
    pub fn page_cache(&self) -> &PageCache {
        &self.page_cache
    }

    /// Drops all clean cached file pages, returning how many frames were
    /// freed — the node's reclamation path under memory pressure.
    pub fn drop_page_cache(&mut self) -> u64 {
        self.page_cache.clear(&mut self.frames)
    }

    /// Creates an empty process.
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `Result` for forward compatibility
    /// with per-process resource limits.
    pub fn spawn(&mut self, comm: &str) -> Result<Pid, OsError> {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.processes.insert(
            pid,
            Process {
                task: Task::new(pid, comm),
                mm: AddressSpace::new(),
            },
        );
        Ok(pid)
    }

    /// Inserts a fully formed process (restore paths build the process
    /// outside and hand it over). Returns its new pid.
    pub fn adopt(&mut self, mut process: Process) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        process.task.pid = pid;
        self.processes.insert(pid, process);
        pid
    }

    /// Looks up a process.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchProcess`] if `pid` is not live on this node.
    pub fn process(&self, pid: Pid) -> Result<&Process, OsError> {
        self.processes.get(&pid).ok_or(OsError::NoSuchProcess(pid))
    }

    /// Mutable process lookup.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchProcess`] if `pid` is not live on this node.
    pub fn process_mut(&mut self, pid: Pid) -> Result<&mut Process, OsError> {
        self.processes
            .get_mut(&pid)
            .ok_or(OsError::NoSuchProcess(pid))
    }

    /// Live pids, in creation order.
    pub fn pids(&self) -> Vec<Pid> {
        self.processes.keys().copied().collect()
    }

    /// Number of live processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// Builds the borrowed fault context for external drivers (the fork
    /// mechanism crates use this with [`Node::process_mut`] unavailable —
    /// split borrows instead via [`Node::with_process_ctx`]).
    pub fn mm_context(&mut self) -> MmContext<'_> {
        MmContext {
            frames: &mut self.frames,
            cache: &mut self.cache,
            device: &self.device,
            rootfs: &self.rootfs,
            model: &self.model,
            page_cache: &mut self.page_cache,
            node: self.id,
            file_readahead_pages: self.file_readahead_pages,
        }
    }

    /// Runs `f` with simultaneous mutable access to one process and the
    /// node's fault context — the borrow-splitting primitive the fork
    /// mechanisms are built on.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchProcess`] if `pid` is not live on this node.
    pub fn with_process_ctx<R>(
        &mut self,
        pid: Pid,
        f: impl FnOnce(&mut Process, &mut MmContext<'_>) -> R,
    ) -> Result<R, OsError> {
        let process = self
            .processes
            .get_mut(&pid)
            .ok_or(OsError::NoSuchProcess(pid))?;
        let mut ctx = MmContext {
            frames: &mut self.frames,
            cache: &mut self.cache,
            device: &self.device,
            rootfs: &self.rootfs,
            model: &self.model,
            page_cache: &mut self.page_cache,
            node: self.id,
            file_readahead_pages: self.file_readahead_pages,
        };
        Ok(f(process, &mut ctx))
    }

    /// Simulates one memory access by `pid` to virtual page `vpn`,
    /// advancing the node clock and updating counters.
    ///
    /// # Errors
    ///
    /// Propagates address-space errors ([`OsError::BadAddress`],
    /// [`OsError::OutOfMemory`], …).
    pub fn access(&mut self, pid: Pid, vpn: u64, access: Access) -> Result<AccessOutcome, OsError> {
        let outcome = self.with_process_ctx(pid, |p, ctx| {
            p.mm.access(crate::addr::VirtPageNum(vpn), access, ctx)
        })??;
        self.clock.advance(outcome.cost);
        if let Some(kind) = outcome.fault {
            self.counters.incr(kind.counter_name());
        }
        if outcome.pt_leaf_cow {
            self.counters.incr("pt_leaf_cow");
        }
        if outcome.vma_block_cow {
            self.counters.incr("vma_block_cow");
        }
        self.counters.incr(if outcome.cache_hit {
            "llc_hit"
        } else {
            "llc_miss"
        });
        if outcome.cxl_tier && !outcome.cache_hit {
            self.counters.incr("cxl_line_access");
        }
        if outcome.retries > 0 {
            self.counters
                .add("cxl_transient_retry", u64::from(outcome.retries));
        }
        if cxl_telemetry::is_armed() {
            let node = self.id.0;
            if let Some(kind) = outcome.fault {
                cxl_telemetry::counter_add("node_os", kind.counter_name(), Some(node), 1);
                cxl_telemetry::timer_record(
                    "node_os",
                    "fault.latency",
                    Some(node),
                    outcome.fault_cost,
                );
            }
            if outcome.retries > 0 {
                cxl_telemetry::counter_add(
                    "node_os",
                    "cxl_transient_retry",
                    Some(node),
                    u64::from(outcome.retries),
                );
            }
            cxl_telemetry::counter_add(
                "node_os",
                if outcome.cache_hit {
                    "llc_hit"
                } else {
                    "llc_miss"
                },
                Some(node),
                1,
            );
        }
        Ok(outcome)
    }

    /// Forks `parent` locally: CoW-shares its anonymous memory, clones its
    /// task. Returns the child pid and the modelled fork latency (already
    /// charged to the clock).
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchProcess`] if `parent` is not live;
    /// [`OsError::OutOfMemory`] if page-table duplication cannot allocate.
    pub fn local_fork(&mut self, parent: Pid) -> Result<(Pid, SimDuration), OsError> {
        let (forked, task) =
            self.with_process_ctx(parent, |p, ctx| (p.mm.fork_into(ctx), p.task.clone()))?;
        let (child_mm, cost) = forked?;
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let mut child_task = task;
        child_task.pid = pid;
        self.processes.insert(
            pid,
            Process {
                task: child_task,
                mm: child_mm,
            },
        );
        self.clock.advance(cost);
        self.counters.incr("local_fork");
        cxl_telemetry::counter_add("node_os", "local_fork", Some(self.id.0), 1);
        cxl_telemetry::timer_record("node_os", "local_fork.latency", Some(self.id.0), cost);
        Ok((pid, cost))
    }

    /// Terminates `pid`, releasing all its local frames.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchProcess`] if `pid` is not live on this node.
    pub fn kill(&mut self, pid: Pid) -> Result<(), OsError> {
        let mut process = self
            .processes
            .remove(&pid)
            .ok_or(OsError::NoSuchProcess(pid))?;
        let mut ctx = MmContext {
            frames: &mut self.frames,
            cache: &mut self.cache,
            device: &self.device,
            rootfs: &self.rootfs,
            model: &self.model,
            page_cache: &mut self.page_cache,
            node: self.id,
            file_readahead_pages: self.file_readahead_pages,
        };
        process.mm.teardown(&mut ctx);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vma::Protection;

    fn node() -> Node {
        Node::new(
            NodeConfig::default().with_local_mem_mib(16),
            Arc::new(CxlDevice::with_capacity_mib(16)),
        )
    }

    #[test]
    fn spawn_access_kill_lifecycle() {
        let mut n = node();
        let pid = n.spawn("t").unwrap();
        assert_eq!(n.process_count(), 1);
        n.process_mut(pid)
            .unwrap()
            .mm
            .map_anonymous(0, 8, Protection::read_write(), "heap")
            .unwrap();
        let before = n.now();
        n.access(pid, 3, Access::Write).unwrap();
        assert!(n.now() > before, "clock advanced");
        assert_eq!(n.frames().used(), 1);
        n.kill(pid).unwrap();
        assert_eq!(n.frames().used(), 0);
        assert!(matches!(n.process(pid), Err(OsError::NoSuchProcess(_))));
        assert!(matches!(n.kill(pid), Err(OsError::NoSuchProcess(_))));
    }

    #[test]
    fn counters_track_faults_and_cache() {
        let mut n = node();
        let pid = n.spawn("t").unwrap();
        n.process_mut(pid)
            .unwrap()
            .mm
            .map_anonymous(0, 8, Protection::read_write(), "heap")
            .unwrap();
        n.access(pid, 0, Access::Write).unwrap();
        n.access(pid, 0, Access::Read).unwrap();
        assert_eq!(n.counters().get("fault_anon_zero_fill"), 1);
        assert_eq!(n.counters().get("llc_hit"), 1);
        assert_eq!(n.counters().get("llc_miss"), 1);
        n.reset_counters();
        assert_eq!(n.counters().get("llc_hit"), 0);
    }

    #[test]
    fn local_fork_creates_child_sharing_memory() {
        let mut n = node();
        let parent = n.spawn("parent").unwrap();
        n.process_mut(parent)
            .unwrap()
            .mm
            .map_anonymous(0, 4, Protection::read_write(), "heap")
            .unwrap();
        n.access(parent, 0, Access::Write).unwrap();
        let frames_before = n.frames().used();
        let (child, cost) = n.local_fork(parent).unwrap();
        assert!(cost > SimDuration::ZERO);
        assert_eq!(
            n.frames().used(),
            frames_before,
            "fork allocates no data frames"
        );
        assert_eq!(n.process(child).unwrap().task.comm, "parent");
        assert_ne!(child, parent);
        // Child write isolates.
        n.access(child, 0, Access::Write).unwrap();
        assert_eq!(n.frames().used(), frames_before + 1);
        assert_eq!(n.counters().get("fault_local_cow"), 1);
    }

    #[test]
    fn adopt_assigns_fresh_pid() {
        let mut n = node();
        let p = Process {
            task: Task::new(Pid(0), "adopted"),
            mm: AddressSpace::new(),
        };
        let pid = n.adopt(p);
        assert_eq!(n.process(pid).unwrap().task.pid, pid);
    }

    #[test]
    fn nodes_share_rootfs_when_asked() {
        let device = Arc::new(CxlDevice::with_capacity_mib(4));
        let rootfs = Arc::new(SharedFs::new());
        rootfs.create("/app", 4096, 1);
        let a = Node::with_rootfs(
            NodeConfig::default().with_id(0),
            Arc::clone(&device),
            Arc::clone(&rootfs),
        );
        let b = Node::with_rootfs(NodeConfig::default().with_id(1), device, rootfs);
        assert!(a.rootfs().exists("/app"));
        assert!(b.rootfs().exists("/app"));
        assert_eq!(a.id(), NodeId(0));
        assert_eq!(b.id(), NodeId(1));
    }
}
