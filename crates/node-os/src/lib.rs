//! A simulated per-node operating system kernel.
//!
//! CXLfork is, at heart, a set of manipulations of Linux memory-management
//! structures: it copies a process's page-table tree and VMA tree into CXL
//! memory, *rebases* their internal pointers onto device offsets, and later
//! *attaches* the immutable leaves of those trees into a new process on
//! another node (§4). Reproducing that faithfully requires the structures
//! themselves, so this crate implements the OS substrate the paper's kernel
//! work sits on:
//!
//! * [`frame::FrameAllocator`] — node-local physical memory with refcounted
//!   frames (for local-fork CoW sharing) and a hard capacity limit (for the
//!   memory-constrained CXLporter experiments, Fig. 10c).
//! * [`pte`] — page-table entries with Present/Writable/Accessed/Dirty bits
//!   plus the software bits CXLfork uses (CoW, checkpoint-pinned,
//!   fetch-on-access, user hot hint).
//! * [`page_table::PageTable`] — a 4-level radix tree whose *leaves* can be
//!   either node-local (mutable) or **attached**: shared, immutable,
//!   CXL-resident leaves referenced by device page number. Mutating an
//!   attached leaf triggers a leaf-level copy-on-write, exactly as §4.2.1
//!   describes. Attached leaves expose atomic Accessed-bit tracking (the
//!   one mutation §4.3 permits on checkpointed PTEs).
//! * [`vma`] — virtual memory areas and a [`vma::VmaTree`] organised in
//!   blocks that can likewise be attached from a checkpoint and copied on
//!   first update/fault.
//! * [`mm::AddressSpace`] — ties the two trees together with the fault
//!   state machine: anonymous zero-fill, file-backed major faults, local
//!   and CXL copy-on-write, CXL pull (migrate-on-access) faults, and the
//!   per-access LLC + memory-tier latency charging.
//! * [`cache::LlcCache`] — a set-associative last-level-cache model; the
//!   paper's warm-execution results hinge on whether a function's working
//!   set fits in the 64 MB LLC (§7.1).
//! * [`fs::SharedFs`] — the cluster-wide identical root filesystem that all
//!   remote-fork designs assume (§4.1).
//! * [`process`] / [`node::Node`] — tasks (registers, fd table,
//!   namespaces), process tables, and the node runtime gluing everything to
//!   a [`simclock::SimClock`].
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use cxl_mem::CxlDevice;
//! use node_os::{Node, NodeConfig, mm::Access, vma::{Protection, VmaKind}};
//!
//! # fn main() -> Result<(), node_os::OsError> {
//! let device = Arc::new(CxlDevice::with_capacity_mib(64));
//! let mut node = Node::new(NodeConfig::default().with_id(0), device);
//! let pid = node.spawn("demo")?;
//! // Give the process 1 MiB of anonymous heap and touch it.
//! node.process_mut(pid)?.mm.map_anonymous(0x1000, 256, Protection::read_write(), "heap")?;
//! let outcome = node.access(pid, 0x1000, Access::Write)?;
//! assert!(outcome.fault.is_some()); // first touch zero-fills a frame
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod cache;
pub mod error;
pub mod frame;
pub mod fs;
pub mod mm;
pub mod node;
pub mod page_table;
pub mod pagecache;
pub mod process;
pub mod pte;
pub mod vma;

pub use addr::{Pfn, PhysAddr, Pid, VirtAddr, VirtPageNum};
pub use error::OsError;
pub use node::{Node, NodeConfig};

/// Re-export of the fabric node identifier.
pub use cxl_mem::NodeId;

/// Size of one page in bytes.
pub const PAGE_SIZE: u64 = cxl_mem::PAGE_SIZE;

/// Number of PTEs in one page-table leaf (4 KiB / 8 B).
pub const PTES_PER_LEAF: usize = 512;
