//! Tasks, CPU context, file descriptors and namespaces.
//!
//! These model the *private* and *global/reconfigurable* process state that
//! CXLfork's checkpoint distinguishes (§4.1): the task struct and register
//! file are private (checkpointed as-is to CXL), the fd table and mount
//! points are "lightly serialized" global state re-instantiated on the
//! restore node, and scheduling/namespace configuration is *reconfigurable*
//! — inherited from the restore-side caller so functions can be cloned
//! straight into new containers (§4.2).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::addr::Pid;

/// The architectural register file (16 GPRs + rip + rsp).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Registers {
    /// General-purpose registers.
    pub gpr: [u64; 16],
    /// Instruction pointer.
    pub rip: u64,
    /// Stack pointer.
    pub rsp: u64,
}

impl Registers {
    /// A register file seeded with recognizable values (tests and examples
    /// verify the context survives checkpoint/restore byte-for-byte).
    pub fn seeded(seed: u64) -> Self {
        let mut gpr = [0u64; 16];
        for (i, r) in gpr.iter_mut().enumerate() {
            *r = seed.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64);
        }
        Registers {
            gpr,
            rip: seed ^ 0x400_000,
            rsp: seed ^ 0x7fff_f000,
        }
    }
}

/// One open file description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileDescriptor {
    /// Path on the shared root filesystem.
    pub path: String,
    /// Current read/write offset.
    pub offset: u64,
    /// `true` if opened for writing.
    pub writable: bool,
}

/// The per-process file-descriptor table.
///
/// # Example
///
/// ```
/// use node_os::process::{FdTable, FileDescriptor};
///
/// let mut fds = FdTable::new();
/// let fd = fds.open(FileDescriptor { path: "/etc/conf".into(), offset: 0, writable: false });
/// assert_eq!(fds.get(fd).unwrap().path, "/etc/conf");
/// fds.close(fd);
/// assert!(fds.get(fd).is_none());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FdTable {
    slots: Vec<Option<FileDescriptor>>,
}

impl FdTable {
    /// An empty table.
    pub fn new() -> Self {
        FdTable::default()
    }

    /// Opens a descriptor in the lowest free slot, returning its number.
    pub fn open(&mut self, fd: FileDescriptor) -> usize {
        if let Some(i) = self.slots.iter().position(Option::is_none) {
            self.slots[i] = Some(fd);
            i
        } else {
            self.slots.push(Some(fd));
            self.slots.len() - 1
        }
    }

    /// Closes a descriptor; returns it if it was open.
    pub fn close(&mut self, fd: usize) -> Option<FileDescriptor> {
        self.slots.get_mut(fd).and_then(Option::take)
    }

    /// Looks up an open descriptor.
    pub fn get(&self, fd: usize) -> Option<&FileDescriptor> {
        self.slots.get(fd).and_then(Option::as_ref)
    }

    /// Iterates `(fd, descriptor)` over open descriptors.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &FileDescriptor)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|d| (i, d)))
    }

    /// Number of open descriptors.
    pub fn open_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

/// Namespace membership and container configuration.
///
/// `mount_ns` and `pid_ns` are checkpointed (CXLfork "only serializes and
/// checkpoints mount points and the process identifier (PID) namespaces",
/// §4.1); the network namespace and cgroup are *reconfigurable* — inherited
/// from the process that calls the restore on the new node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct NamespaceSet {
    /// PID namespace id (checkpointed).
    pub pid_ns: u64,
    /// Mount namespace id (checkpointed).
    pub mount_ns: u64,
    /// Network namespace id (inherited on restore).
    pub net_ns: u64,
    /// Cgroup path (inherited on restore).
    pub cgroup: String,
}

/// Scheduling configuration (reconfigurable state: reset on the new node,
/// §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedPolicy {
    /// Niceness, −20..=19.
    pub nice: i8,
    /// CPU affinity mask.
    pub cpu_mask: u64,
}

impl Default for SchedPolicy {
    fn default() -> Self {
        SchedPolicy {
            nice: 0,
            cpu_mask: u64::MAX,
        }
    }
}

/// The task structure: everything about a process except its address
/// space.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Task {
    /// Process id on the owning node.
    pub pid: Pid,
    /// Command name.
    pub comm: String,
    /// CPU context.
    pub regs: Registers,
    /// Open files.
    pub fds: FdTable,
    /// Namespace membership.
    pub ns: NamespaceSet,
    /// Scheduler configuration.
    pub sched: SchedPolicy,
}

impl Task {
    /// A fresh task with default tables.
    pub fn new(pid: Pid, comm: &str) -> Self {
        Task {
            pid,
            comm: comm.to_owned(),
            regs: Registers::default(),
            fds: FdTable::new(),
            ns: NamespaceSet::default(),
            sched: SchedPolicy::default(),
        }
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.pid, self.comm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_table_reuses_lowest_slot() {
        let mut t = FdTable::new();
        let f = |p: &str| FileDescriptor {
            path: p.into(),
            offset: 0,
            writable: false,
        };
        let a = t.open(f("/a"));
        let b = t.open(f("/b"));
        assert_eq!((a, b), (0, 1));
        t.close(a);
        let c = t.open(f("/c"));
        assert_eq!(c, 0);
        assert_eq!(t.open_count(), 2);
        assert_eq!(t.iter().count(), 2);
    }

    #[test]
    fn close_missing_returns_none() {
        let mut t = FdTable::new();
        assert!(t.close(3).is_none());
    }

    #[test]
    fn seeded_registers_differ_by_seed() {
        assert_ne!(Registers::seeded(1), Registers::seeded(2));
        assert_eq!(Registers::seeded(1), Registers::seeded(1));
        let r = Registers::seeded(5);
        assert!(
            r.gpr
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len()
                > 1
        );
    }

    #[test]
    fn task_display_and_defaults() {
        let t = Task::new(Pid(4), "bert");
        assert_eq!(t.to_string(), "pid4 (bert)");
        assert_eq!(t.sched.nice, 0);
        assert_eq!(t.sched.cpu_mask, u64::MAX);
        assert_eq!(t.fds.open_count(), 0);
    }
}
