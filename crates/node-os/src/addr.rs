//! Address and identifier newtypes.

use std::fmt;
use std::ops::Range;

use serde::{Deserialize, Serialize};

use cxl_mem::CxlPageId;

use crate::PAGE_SIZE;

/// A node-local physical frame number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pfn(pub u64);

impl fmt::Display for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn{:#x}", self.0)
    }
}

/// The physical location a PTE maps: a node-local frame or a CXL device
/// page.
///
/// The distinction is the core of the paper's tiering story — loads to
/// `Cxl` targets pay the fabric round trip, loads to `Local` targets pay
/// DRAM latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PhysAddr {
    /// A frame in the node's local DRAM.
    Local(Pfn),
    /// A page on the shared CXL device.
    Cxl(CxlPageId),
}

impl PhysAddr {
    /// `true` if the target is on the CXL device.
    #[inline]
    pub const fn is_cxl(self) -> bool {
        matches!(self, PhysAddr::Cxl(_))
    }

    /// `true` if the target is in local DRAM.
    #[inline]
    pub const fn is_local(self) -> bool {
        matches!(self, PhysAddr::Local(_))
    }

    /// A stable cache-tag key, unique across both tiers of one node.
    ///
    /// Local frames are private to a node, CXL pages are global; the high
    /// bit separates the namespaces.
    #[inline]
    pub const fn cache_key(self) -> u64 {
        match self {
            PhysAddr::Local(Pfn(p)) => p,
            PhysAddr::Cxl(CxlPageId(p)) => p | (1 << 63),
        }
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysAddr::Local(p) => write!(f, "local:{p}"),
            PhysAddr::Cxl(p) => write!(f, "{p}"),
        }
    }
}

/// A virtual byte address within a process address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// The virtual page containing this address.
    #[inline]
    pub const fn page(self) -> VirtPageNum {
        VirtPageNum(self.0 / PAGE_SIZE)
    }

    /// Offset within the page.
    #[inline]
    pub const fn in_page(self) -> u64 {
        self.0 % PAGE_SIZE
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va{:#x}", self.0)
    }
}

/// A virtual page number (address >> 12).
///
/// The simulation uses a 48-bit virtual address space (36-bit VPNs), as on
/// x86-64 with 4-level paging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VirtPageNum(pub u64);

impl VirtPageNum {
    /// Number of valid VPN bits (48-bit VAs, 4 KiB pages).
    pub const BITS: u32 = 36;

    /// The first byte address of the page.
    #[inline]
    pub const fn addr(self) -> VirtAddr {
        VirtAddr(self.0 * PAGE_SIZE)
    }

    /// The next page.
    #[inline]
    pub const fn next(self) -> VirtPageNum {
        VirtPageNum(self.0 + 1)
    }

    /// Radix-tree index at `level` (4 = root … 1 = leaf), 9 bits each.
    ///
    /// # Panics
    ///
    /// Panics if `level` is not in `1..=4`.
    #[inline]
    pub fn index(self, level: u8) -> u16 {
        assert!((1..=4).contains(&level), "page-table level {level}");
        ((self.0 >> (9 * (level as u64 - 1))) & 0x1ff) as u16
    }

    /// The index of the page-table leaf covering this page
    /// (all VPN bits above the low 9).
    #[inline]
    pub const fn leaf_index(self) -> u64 {
        self.0 >> 9
    }

    /// Offset of this page within its leaf.
    #[inline]
    pub const fn leaf_slot(self) -> usize {
        (self.0 & 0x1ff) as usize
    }
}

impl fmt::Display for VirtPageNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn{:#x}", self.0)
    }
}

/// A half-open range of virtual pages.
pub type VpnRange = Range<u64>;

/// A process identifier, unique within one node.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Pid(pub u64);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virt_addr_page_split() {
        let a = VirtAddr(5 * PAGE_SIZE + 7);
        assert_eq!(a.page(), VirtPageNum(5));
        assert_eq!(a.in_page(), 7);
        assert_eq!(VirtPageNum(5).addr(), VirtAddr(5 * PAGE_SIZE));
    }

    #[test]
    fn radix_indices_decompose_vpn() {
        // vpn = l4|l3|l2|l1 9-bit groups.
        let vpn = VirtPageNum((3 << 27) | (5 << 18) | (7 << 9) | 11);
        assert_eq!(vpn.index(4), 3);
        assert_eq!(vpn.index(3), 5);
        assert_eq!(vpn.index(2), 7);
        assert_eq!(vpn.index(1), 11);
        assert_eq!(vpn.leaf_slot(), 11);
        assert_eq!(vpn.leaf_index(), vpn.0 >> 9);
    }

    #[test]
    #[should_panic(expected = "page-table level")]
    fn radix_index_rejects_bad_level() {
        let _ = VirtPageNum(0).index(5);
    }

    #[test]
    fn phys_addr_cache_keys_do_not_collide_across_tiers() {
        let local = PhysAddr::Local(Pfn(42));
        let cxl = PhysAddr::Cxl(CxlPageId(42));
        assert_ne!(local.cache_key(), cxl.cache_key());
        assert!(local.is_local() && !local.is_cxl());
        assert!(cxl.is_cxl() && !cxl.is_local());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Pfn(255).to_string(), "pfn0xff");
        assert_eq!(Pid(9).to_string(), "pid9");
        assert_eq!(VirtAddr(16).to_string(), "va0x10");
        assert_eq!(PhysAddr::Local(Pfn(1)).to_string(), "local:pfn0x1");
    }
}
