//! A per-node page cache for file-backed pages.
//!
//! Private file mappings (libraries) are read-shared through the page
//! cache on a real kernel: all processes on a node map the *same* frame
//! for a clean file page, and only the first faulting process pays the
//! filesystem read (a major fault); later ones take minor faults. This is
//! what makes a locally forked child cheap in both time and memory, and
//! what a cross-node restore loses (the target node's cache is cold) —
//! both effects the paper's Fig. 7 measures.
//!
//! The cache holds one reference on each cached frame, so frames stay
//! resident after every mapper exits (until [`PageCache::clear`] reclaims
//! them under memory pressure).

use std::collections::BTreeMap;

use crate::addr::Pfn;
use crate::frame::FrameAllocator;

/// A `(path, file page) → frame` cache.
///
/// Keyed by a `BTreeMap` so [`PageCache::entries`] walks in a stable
/// order — the entries feed `cxl-check` audits and report output, which
/// must be byte-identical across runs.
#[derive(Debug, Default)]
pub struct PageCache {
    map: BTreeMap<(String, u64), Pfn>,
    hits: u64,
    misses: u64,
}

impl PageCache {
    /// An empty cache.
    pub fn new() -> Self {
        PageCache::default()
    }

    /// Looks up a cached frame, counting a hit or miss.
    pub fn lookup(&mut self, path: &str, file_page: u64) -> Option<Pfn> {
        match self.map.get(&(path.to_owned(), file_page)) {
            Some(pfn) => {
                self.hits += 1;
                Some(*pfn)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a frame into the cache. The caller must have already given
    /// the cache its own reference on the frame.
    pub fn insert(&mut self, path: &str, file_page: u64, pfn: Pfn) {
        self.map.insert((path.to_owned(), file_page), pfn);
    }

    /// Cached page count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Iterates every cached `(path, file_page) → pfn` entry, for
    /// cross-layer auditing (each entry holds one frame reference that
    /// `cxl-check` balances into the expected refcount).
    pub fn entries(&self) -> impl Iterator<Item = (&str, u64, Pfn)> + '_ {
        self.map
            .iter()
            .map(|((path, file_page), pfn)| (path.as_str(), *file_page, *pfn))
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cache hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses since creation.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops every cached page, releasing the cache's frame references.
    /// Returns how many frames were actually freed (refcount reached
    /// zero). This is the node's clean-page reclamation path under memory
    /// pressure.
    pub fn clear(&mut self, frames: &mut FrameAllocator) -> u64 {
        let mut freed = 0;
        for (_, pfn) in std::mem::take(&mut self.map) {
            if frames.dec_ref(pfn) {
                freed += 1;
            }
        }
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_mem::PageData;

    #[test]
    fn lookup_insert_roundtrip() {
        let mut frames = FrameAllocator::new(8);
        let mut cache = PageCache::new();
        assert!(cache.lookup("/lib", 0).is_none());
        let pfn = frames.alloc(PageData::pattern(1)).unwrap();
        cache.insert("/lib", 0, pfn);
        assert_eq!(cache.lookup("/lib", 0), Some(pfn));
        assert!(cache.lookup("/lib", 1).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_releases_cache_references() {
        let mut frames = FrameAllocator::new(8);
        let mut cache = PageCache::new();
        // Frame referenced by cache only.
        let solo = frames.alloc(PageData::zeroed()).unwrap();
        cache.insert("/a", 0, solo);
        // Frame referenced by cache AND a mapper.
        let shared = frames.alloc(PageData::zeroed()).unwrap();
        frames.inc_ref(shared);
        cache.insert("/a", 1, shared);

        let freed = cache.clear(&mut frames);
        assert_eq!(freed, 1, "only the unmapped page is freed");
        assert!(cache.is_empty());
        assert_eq!(frames.refcount(shared), 1, "mapper's reference survives");
        assert_eq!(frames.refcount(solo), 0);
    }
}
