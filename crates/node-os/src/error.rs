//! Error type for simulated-OS operations.

use std::error::Error;
use std::fmt;

use crate::addr::{Pid, VirtPageNum};
use cxl_mem::CxlError;

/// Errors surfaced by node-OS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OsError {
    /// The node's local memory is exhausted.
    ///
    /// CXLporter reacts to this by recycling idle containers (Fig. 10c).
    OutOfMemory {
        /// Frames requested.
        requested: u64,
        /// Frames currently free on the node.
        available: u64,
    },
    /// No process with that pid exists on this node.
    NoSuchProcess(Pid),
    /// The virtual page is not covered by any VMA.
    BadAddress(VirtPageNum),
    /// Access violated the VMA protection (e.g. write to read-only data).
    ProtectionViolation(VirtPageNum),
    /// A path was not found on the shared root filesystem.
    NoSuchFile(String),
    /// A new mapping overlaps an existing VMA.
    MappingOverlap(VirtPageNum),
    /// An underlying CXL device operation failed.
    Cxl(CxlError),
    /// Bounded-backoff retries against the CXL device gave up: the link
    /// stayed transiently faulted through every attempt.
    DeviceRetriesExhausted {
        /// Attempts made (including the first).
        attempts: u32,
        /// The last transient error observed.
        last: CxlError,
    },
}

impl fmt::Display for OsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "out of local memory: requested {requested} frames, {available} free"
            ),
            OsError::NoSuchProcess(pid) => write!(f, "no such process: {pid}"),
            OsError::BadAddress(vpn) => write!(f, "address not mapped by any vma: {vpn}"),
            OsError::ProtectionViolation(vpn) => {
                write!(f, "access violates vma protection at {vpn}")
            }
            OsError::NoSuchFile(p) => write!(f, "no such file on root fs: {p}"),
            OsError::MappingOverlap(vpn) => {
                write!(f, "requested mapping overlaps existing vma at {vpn}")
            }
            OsError::Cxl(e) => write!(f, "cxl device error: {e}"),
            OsError::DeviceRetriesExhausted { attempts, last } => {
                write!(
                    f,
                    "cxl device unavailable after {attempts} attempts: {last}"
                )
            }
        }
    }
}

impl Error for OsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OsError::Cxl(e) => Some(e),
            OsError::DeviceRetriesExhausted { last, .. } => Some(last),
            _ => None,
        }
    }
}

impl From<CxlError> for OsError {
    fn from(e: CxlError) -> Self {
        OsError::Cxl(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = OsError::OutOfMemory {
            requested: 4,
            available: 1,
        };
        assert!(e.to_string().contains("4 frames"));
        assert!(OsError::NoSuchProcess(Pid(3)).to_string().contains("pid3"));
        assert!(OsError::BadAddress(VirtPageNum(1))
            .to_string()
            .contains("vpn"));
    }

    #[test]
    fn cxl_errors_convert_and_chain() {
        let e: OsError = CxlError::BadPage(cxl_mem::CxlPageId(7)).into();
        assert!(matches!(e, OsError::Cxl(_)));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + Error>() {}
        assert_send_sync::<OsError>();
    }
}
