//! Page-table entries and their flag bits.
//!
//! The hardware-visible bits mirror x86-64 (Present, Writable, Accessed,
//! Dirty). The software bits are the ones CXLfork's design adds (§4):
//!
//! * [`PteFlags::COW`] — write-protected copy-on-write mapping.
//! * [`PteFlags::FILE`] — backs a private file mapping.
//! * [`PteFlags::CKPT_PIN`] — the "unused PTE bit" (§4.2.1) that marks an
//!   entry as belonging to an attached checkpoint leaf, so any OS update
//!   attempt triggers a leaf-level CoW instead of an in-place write.
//! * [`PteFlags::FETCH_ON_ACCESS`] — hybrid tiering's encoding for "this
//!   page was hot at checkpoint time; the first access should migrate it
//!   to local memory" (§4.3).
//! * [`PteFlags::HOT_HINT`] — the user-populated hot-page hint bit (§4.3,
//!   "User-Identified Hot Pages").

use std::fmt;
use std::ops::{BitOr, BitOrAssign};

use serde::{Deserialize, Serialize};

use crate::addr::PhysAddr;

/// Flag bits of a [`Pte`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize, PartialOrd, Ord,
)]
pub struct PteFlags(u16);

impl PteFlags {
    /// No flags set.
    pub const NONE: PteFlags = PteFlags(0);
    /// The translation is valid.
    pub const PRESENT: PteFlags = PteFlags(1 << 0);
    /// Stores are allowed.
    pub const WRITABLE: PteFlags = PteFlags(1 << 1);
    /// Hardware-set on any access (the A bit, §4.3).
    pub const ACCESSED: PteFlags = PteFlags(1 << 2);
    /// Hardware-set on any store (the D bit, §4.2.1).
    pub const DIRTY: PteFlags = PteFlags(1 << 3);
    /// Copy-on-write: write-protected, duplicated on first store.
    pub const COW: PteFlags = PteFlags(1 << 4);
    /// Backs a private file mapping (library, runtime module).
    pub const FILE: PteFlags = PteFlags(1 << 5);
    /// Software: entry lives in an attached (checkpoint) leaf; OS updates
    /// must leaf-CoW first.
    pub const CKPT_PIN: PteFlags = PteFlags(1 << 6);
    /// Software: hybrid tiering should migrate this page to local memory on
    /// first access.
    pub const FETCH_ON_ACCESS: PteFlags = PteFlags(1 << 7);
    /// Software: user-space profiler marked this page hot.
    pub const HOT_HINT: PteFlags = PteFlags(1 << 8);

    /// `true` if every bit of `other` is set in `self`.
    #[inline]
    pub const fn contains(self, other: PteFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of the two flag sets.
    #[inline]
    pub const fn union(self, other: PteFlags) -> PteFlags {
        PteFlags(self.0 | other.0)
    }

    /// `self` without the bits of `other`.
    #[inline]
    pub const fn without(self, other: PteFlags) -> PteFlags {
        PteFlags(self.0 & !other.0)
    }

    /// Raw bits (for image serialization in the CRIU baseline).
    #[inline]
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// Reconstructs flags from raw bits.
    #[inline]
    pub const fn from_bits(bits: u16) -> PteFlags {
        PteFlags(bits)
    }
}

impl BitOr for PteFlags {
    type Output = PteFlags;
    #[inline]
    fn bitor(self, rhs: PteFlags) -> PteFlags {
        self.union(rhs)
    }
}

impl BitOrAssign for PteFlags {
    #[inline]
    fn bitor_assign(&mut self, rhs: PteFlags) {
        *self = *self | rhs;
    }
}

impl fmt::Display for PteFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: [(PteFlags, char); 9] = [
            (PteFlags::PRESENT, 'P'),
            (PteFlags::WRITABLE, 'W'),
            (PteFlags::ACCESSED, 'A'),
            (PteFlags::DIRTY, 'D'),
            (PteFlags::COW, 'C'),
            (PteFlags::FILE, 'F'),
            (PteFlags::CKPT_PIN, 'K'),
            (PteFlags::FETCH_ON_ACCESS, 'M'),
            (PteFlags::HOT_HINT, 'H'),
        ];
        for (flag, c) in names {
            if self.contains(flag) {
                write!(f, "{c}")?;
            } else {
                write!(f, "-")?;
            }
        }
        Ok(())
    }
}

/// One page-table entry: an optional physical target plus flags.
///
/// # Example
///
/// ```
/// use node_os::pte::{Pte, PteFlags};
/// use node_os::{PhysAddr, Pfn};
///
/// let pte = Pte::mapped(PhysAddr::Local(Pfn(7)), PteFlags::PRESENT | PteFlags::WRITABLE);
/// assert!(pte.is_present());
/// assert!(pte.is_writable());
/// assert_eq!(pte.target(), Some(PhysAddr::Local(Pfn(7))));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Pte {
    target: Option<PhysAddr>,
    flags: PteFlags,
}

impl Pte {
    /// The empty (non-present, untargeted) entry.
    pub const EMPTY: Pte = Pte {
        target: None,
        flags: PteFlags::NONE,
    };

    /// An entry mapping `target` with `flags`.
    pub const fn mapped(target: PhysAddr, flags: PteFlags) -> Pte {
        Pte {
            target: Some(target),
            flags,
        }
    }

    /// An entry that carries a backing target but is *not present* —
    /// hybrid tiering's fetch-on-access encoding.
    pub const fn armed(target: PhysAddr, flags: PteFlags) -> Pte {
        Pte {
            target: Some(target),
            flags,
        }
    }

    /// The physical target, if any.
    #[inline]
    pub const fn target(self) -> Option<PhysAddr> {
        self.target
    }

    /// The flag set.
    #[inline]
    pub const fn flags(self) -> PteFlags {
        self.flags
    }

    /// `true` if the translation is valid.
    #[inline]
    pub const fn is_present(self) -> bool {
        self.flags.contains(PteFlags::PRESENT)
    }

    /// `true` if stores are allowed.
    #[inline]
    pub const fn is_writable(self) -> bool {
        self.flags.contains(PteFlags::WRITABLE)
    }

    /// `true` if the entry is a copy-on-write mapping.
    #[inline]
    pub const fn is_cow(self) -> bool {
        self.flags.contains(PteFlags::COW)
    }

    /// `true` if the A bit is set.
    #[inline]
    pub const fn is_accessed(self) -> bool {
        self.flags.contains(PteFlags::ACCESSED)
    }

    /// `true` if the D bit is set.
    #[inline]
    pub const fn is_dirty(self) -> bool {
        self.flags.contains(PteFlags::DIRTY)
    }

    /// `true` if the entry is completely empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.target.is_none() && self.flags.0 == 0
    }

    /// Returns a copy with `extra` flags set.
    #[inline]
    pub const fn with_flags(self, extra: PteFlags) -> Pte {
        Pte {
            target: self.target,
            flags: self.flags.union(extra),
        }
    }

    /// Returns a copy with `removed` flags cleared.
    #[inline]
    pub const fn without_flags(self, removed: PteFlags) -> Pte {
        Pte {
            target: self.target,
            flags: self.flags.without(removed),
        }
    }

    /// Returns a copy retargeted at `target`.
    #[inline]
    pub const fn retarget(self, target: PhysAddr) -> Pte {
        Pte {
            target: Some(target),
            flags: self.flags,
        }
    }
}

impl fmt::Display for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.target {
            Some(t) => write!(f, "{t}[{}]", self.flags),
            None => write!(f, "none[{}]", self.flags),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Pfn;

    #[test]
    fn flag_algebra() {
        let f = PteFlags::PRESENT | PteFlags::COW;
        assert!(f.contains(PteFlags::PRESENT));
        assert!(f.contains(PteFlags::COW));
        assert!(!f.contains(PteFlags::WRITABLE));
        assert!(!f.contains(PteFlags::PRESENT | PteFlags::WRITABLE));
        assert_eq!(f.without(PteFlags::COW), PteFlags::PRESENT);
        let mut g = PteFlags::NONE;
        g |= PteFlags::DIRTY;
        assert!(g.contains(PteFlags::DIRTY));
    }

    #[test]
    fn flag_bits_roundtrip() {
        let f = PteFlags::ACCESSED | PteFlags::HOT_HINT;
        assert_eq!(PteFlags::from_bits(f.bits()), f);
    }

    #[test]
    fn empty_pte_has_no_properties() {
        let p = Pte::EMPTY;
        assert!(p.is_empty());
        assert!(!p.is_present());
        assert!(!p.is_writable());
        assert_eq!(p.target(), None);
    }

    #[test]
    fn with_without_flags() {
        let p = Pte::mapped(PhysAddr::Local(Pfn(1)), PteFlags::PRESENT);
        let q = p.with_flags(PteFlags::ACCESSED | PteFlags::DIRTY);
        assert!(q.is_accessed() && q.is_dirty());
        let r = q.without_flags(PteFlags::DIRTY);
        assert!(r.is_accessed() && !r.is_dirty());
        // Target untouched throughout.
        assert_eq!(r.target(), Some(PhysAddr::Local(Pfn(1))));
    }

    #[test]
    fn retarget_preserves_flags() {
        let p = Pte::mapped(PhysAddr::Local(Pfn(1)), PteFlags::PRESENT | PteFlags::COW);
        let q = p.retarget(PhysAddr::Cxl(cxl_mem::CxlPageId(9)));
        assert_eq!(q.flags(), p.flags());
        assert!(q.target().unwrap().is_cxl());
    }

    #[test]
    fn armed_entry_is_not_present_but_targeted() {
        let p = Pte::armed(
            PhysAddr::Cxl(cxl_mem::CxlPageId(3)),
            PteFlags::FETCH_ON_ACCESS,
        );
        assert!(!p.is_present());
        assert!(!p.is_empty());
        assert!(p.flags().contains(PteFlags::FETCH_ON_ACCESS));
    }

    #[test]
    fn display_shows_flag_letters() {
        let p = Pte::mapped(
            PhysAddr::Local(Pfn(2)),
            PteFlags::PRESENT | PteFlags::WRITABLE | PteFlags::DIRTY,
        );
        let s = p.to_string();
        assert!(s.contains("PW-D"), "{s}");
    }
}
