//! A set-associative last-level cache model.
//!
//! The paper's warm-execution results (Fig. 8b, Fig. 9a) hinge on whether a
//! function's working set fits in the node's 64 MB L3: "the local hardware
//! caches of the compute nodes may be able to intercept most of the
//! requests to such data, amortizing the increased latency of CXL
//! accesses" (§2.2). The model tracks physical lines at a configurable
//! granularity with per-set LRU replacement.
//!
//! Accesses are tagged by [`PhysAddr::cache_key`](crate::PhysAddr), so a
//! page that migrates from CXL to local memory naturally re-misses once and
//! then hits at the new location.

use crate::addr::PhysAddr;

/// Configuration of the LLC model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes (evaluation platform: 64 MB per socket).
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: usize,
    /// Tracking granularity in bytes. The simulation models page-granular
    /// residency by default: one tag covers one 4 KiB page.
    pub line_bytes: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: 64 * 1024 * 1024,
            associativity: 16,
            line_bytes: crate::PAGE_SIZE,
        }
    }
}

/// A set-associative cache with LRU replacement.
///
/// # Example
///
/// ```
/// use node_os::cache::{CacheConfig, LlcCache};
/// use node_os::{PhysAddr, Pfn};
///
/// let mut llc = LlcCache::new(CacheConfig::default());
/// let line = PhysAddr::Local(Pfn(42));
/// assert!(!llc.access(line)); // compulsory miss
/// assert!(llc.access(line));  // hit
/// ```
#[derive(Debug, Clone)]
pub struct LlcCache {
    /// `sets[s]` holds up to `assoc` tags, most recently used first.
    sets: Vec<Vec<u64>>,
    assoc: usize,
    hits: u64,
    misses: u64,
}

impl LlcCache {
    /// Builds a cache from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields zero sets or zero ways.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.associativity > 0, "associativity must be positive");
        assert!(config.line_bytes > 0, "line size must be positive");
        let lines = (config.capacity_bytes / config.line_bytes).max(1);
        let sets = ((lines as usize) / config.associativity).max(1);
        LlcCache {
            sets: vec![Vec::new(); sets],
            assoc: config.associativity,
            hits: 0,
            misses: 0,
        }
    }

    /// A cache with the default (64 MB / 16-way) geometry.
    pub fn default_llc() -> Self {
        LlcCache::new(CacheConfig::default())
    }

    #[inline]
    fn set_index(&self, key: u64) -> usize {
        // Multiplicative hash spreads both local pfns and CXL page ids.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize % self.sets.len()
    }

    /// Performs one access to the line holding `addr`. Returns `true` on a
    /// hit. Misses insert the line, evicting the LRU way if the set is
    /// full.
    pub fn access(&mut self, addr: PhysAddr) -> bool {
        let key = addr.cache_key();
        let assoc = self.assoc;
        let idx = self.set_index(key);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|&t| t == key) {
            let tag = set.remove(pos);
            set.insert(0, tag);
            self.hits += 1;
            true
        } else {
            if set.len() >= assoc {
                set.pop();
            }
            set.insert(0, key);
            self.misses += 1;
            false
        }
    }

    /// Probes for residency without updating LRU state or counters.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        let key = addr.cache_key();
        self.sets[self.set_index(key)].contains(&key)
    }

    /// Drops the line holding `addr` if resident (page freed or migrated
    /// away).
    pub fn invalidate(&mut self, addr: PhysAddr) {
        let key = addr.cache_key();
        let idx = self.set_index(key);
        self.sets[idx].retain(|&t| t != key);
    }

    /// Empties the cache (e.g. between experiment phases).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Total hits since construction or [`LlcCache::reset_stats`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses since construction or [`LlcCache::reset_stats`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio in `[0, 1]`; `1.0` when no accesses happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Zeroes the hit/miss counters (contents are kept).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Number of lines the cache can hold.
    pub fn capacity_lines(&self) -> usize {
        self.sets.len() * self.assoc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Pfn;
    use cxl_mem::CxlPageId;

    fn tiny() -> LlcCache {
        // 4 sets x 2 ways = 8 lines of one page each.
        LlcCache::new(CacheConfig {
            capacity_bytes: 8 * crate::PAGE_SIZE,
            associativity: 2,
            line_bytes: crate::PAGE_SIZE,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        let a = PhysAddr::Local(Pfn(1));
        assert!(!c.access(a));
        assert!(c.access(a));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = LlcCache::new(CacheConfig {
            capacity_bytes: 2 * crate::PAGE_SIZE,
            associativity: 2,
            line_bytes: crate::PAGE_SIZE,
        });
        // Single set, two ways.
        assert_eq!(c.sets.len(), 1);
        let a = PhysAddr::Local(Pfn(1));
        let b = PhysAddr::Local(Pfn(2));
        let d = PhysAddr::Local(Pfn(3));
        c.access(a);
        c.access(b);
        c.access(a); // a now MRU
        c.access(d); // evicts b
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn local_and_cxl_tags_are_distinct() {
        let mut c = tiny();
        c.access(PhysAddr::Local(Pfn(7)));
        assert!(!c.contains(PhysAddr::Cxl(CxlPageId(7))));
    }

    #[test]
    fn invalidate_and_flush() {
        let mut c = tiny();
        let a = PhysAddr::Cxl(CxlPageId(5));
        c.access(a);
        assert!(c.contains(a));
        c.invalidate(a);
        assert!(!c.contains(a));
        c.access(a);
        c.flush();
        assert!(!c.contains(a));
        // Stats survive flush, reset clears them.
        assert!(c.misses() > 0);
        c.reset_stats();
        assert_eq!(c.misses(), 0);
        assert_eq!(c.hit_ratio(), 1.0);
    }

    #[test]
    fn working_set_within_capacity_hits_after_warmup() {
        let mut c = LlcCache::new(CacheConfig {
            capacity_bytes: 1024 * crate::PAGE_SIZE,
            associativity: 8,
            line_bytes: crate::PAGE_SIZE,
        });
        let pages: Vec<PhysAddr> = (0..256).map(|i| PhysAddr::Local(Pfn(i))).collect();
        for p in &pages {
            c.access(*p);
        }
        c.reset_stats();
        for _ in 0..4 {
            for p in &pages {
                c.access(*p);
            }
        }
        // A 256-page working set in a 1024-line cache should hit nearly
        // always after warm-up (hash skew may cause a handful of conflicts).
        assert!(c.hit_ratio() > 0.95, "hit ratio {}", c.hit_ratio());
    }

    #[test]
    fn working_set_exceeding_capacity_thrashes() {
        let mut c = tiny(); // 8 lines
        for round in 0..4 {
            for i in 0..64 {
                c.access(PhysAddr::Local(Pfn(i)));
            }
            let _ = round;
        }
        assert!(c.hit_ratio() < 0.2, "hit ratio {}", c.hit_ratio());
    }

    #[test]
    fn capacity_lines_reflects_geometry() {
        assert_eq!(tiny().capacity_lines(), 8);
        assert_eq!(LlcCache::default_llc().capacity_lines(), 16384);
    }

    #[test]
    #[should_panic(expected = "associativity")]
    fn zero_associativity_rejected() {
        let _ = LlcCache::new(CacheConfig {
            capacity_bytes: 1024,
            associativity: 0,
            line_bytes: 64,
        });
    }
}
