//! The cluster-wide shared root filesystem.
//!
//! All remote-fork designs in the paper assume "that the root file system
//! is identical across nodes (e.g., as in the case of a container image).
//! Hence the file paths are the same across nodes" (§4.1). The simulation
//! models this as one [`SharedFs`] instance shared (via `Arc`) by every
//! node: files are declared with a length and a content seed, and any node
//! can fault in any page of any file and observe identical bytes.
//!
//! Contents are procedurally generated from the seed, so a multi-gigabyte
//! library set costs no host memory.

use std::collections::BTreeMap;

use cxl_mem::lockdep::TrackedRwLock;

use cxl_mem::PageData;

use crate::error::OsError;
use crate::PAGE_SIZE;

/// Metadata of one file on the shared root filesystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// File length in bytes.
    pub len: u64,
    /// Content seed; page `i` of the file holds
    /// `PageData::pattern(seed ^ i)`.
    pub seed: u64,
}

impl FileMeta {
    /// Number of whole-or-partial pages in the file.
    pub fn pages(&self) -> u64 {
        self.len.div_ceil(PAGE_SIZE)
    }
}

/// A cluster-wide shared, read-only root filesystem.
///
/// Thread-safe; share one instance between all nodes with `Arc`.
///
/// # Example
///
/// ```
/// use node_os::fs::SharedFs;
///
/// let fs = SharedFs::new();
/// fs.create("/usr/lib/libpython3.11.so", 4 << 20, 0xBEEF);
/// let page0 = fs.read_page("/usr/lib/libpython3.11.so", 0).unwrap();
/// let again = fs.read_page("/usr/lib/libpython3.11.so", 0).unwrap();
/// assert_eq!(page0, again); // same bytes on every node, every time
/// ```
#[derive(Debug)]
pub struct SharedFs {
    files: TrackedRwLock<BTreeMap<String, FileMeta>>,
}

impl Default for SharedFs {
    fn default() -> Self {
        SharedFs::new()
    }
}

impl SharedFs {
    /// Creates an empty filesystem.
    pub fn new() -> Self {
        SharedFs {
            files: TrackedRwLock::new("node_os.shared_fs", BTreeMap::new()),
        }
    }

    /// Declares (or replaces) a file of `len` bytes with content `seed`.
    pub fn create(&self, path: &str, len: u64, seed: u64) {
        self.files
            .write()
            .insert(path.to_owned(), FileMeta { len, seed });
    }

    /// Returns the metadata of `path`.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchFile`] if the path does not exist.
    pub fn stat(&self, path: &str) -> Result<FileMeta, OsError> {
        self.files
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| OsError::NoSuchFile(path.to_owned()))
    }

    /// `true` if `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.read().contains_key(path)
    }

    /// Reads page `page_idx` of `path`.
    ///
    /// # Errors
    ///
    /// [`OsError::NoSuchFile`] if the path does not exist or the page is
    /// beyond the end of the file.
    pub fn read_page(&self, path: &str, page_idx: u64) -> Result<PageData, OsError> {
        let meta = self.stat(path)?;
        if page_idx >= meta.pages() {
            return Err(OsError::NoSuchFile(format!(
                "{path} (page {page_idx} beyond eof)"
            )));
        }
        Ok(PageData::pattern(
            meta.seed ^ page_idx.wrapping_mul(0x2545_F491_4F6C_DD1D),
        ))
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.read().len()
    }

    /// Lists all paths with a given prefix (sorted).
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.files
            .read()
            .keys()
            .filter(|p| p.starts_with(prefix))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_stat_roundtrip() {
        let fs = SharedFs::new();
        fs.create("/a", 10_000, 3);
        let m = fs.stat("/a").unwrap();
        assert_eq!(m.len, 10_000);
        assert_eq!(m.pages(), 3);
        assert!(fs.exists("/a"));
        assert!(!fs.exists("/b"));
    }

    #[test]
    fn pages_differ_within_a_file_but_are_deterministic() {
        let fs = SharedFs::new();
        fs.create("/lib", 3 * PAGE_SIZE, 77);
        let p0 = fs.read_page("/lib", 0).unwrap();
        let p1 = fs.read_page("/lib", 1).unwrap();
        assert_ne!(p0, p1);
        assert_eq!(p0, fs.read_page("/lib", 0).unwrap());
    }

    #[test]
    fn different_files_have_different_content() {
        let fs = SharedFs::new();
        fs.create("/x", PAGE_SIZE, 1);
        fs.create("/y", PAGE_SIZE, 2);
        assert_ne!(
            fs.read_page("/x", 0).unwrap(),
            fs.read_page("/y", 0).unwrap()
        );
    }

    #[test]
    fn read_past_eof_errors() {
        let fs = SharedFs::new();
        fs.create("/a", PAGE_SIZE + 1, 0);
        assert!(fs.read_page("/a", 1).is_ok()); // partial page ok
        assert!(matches!(fs.read_page("/a", 2), Err(OsError::NoSuchFile(_))));
        assert!(matches!(
            fs.read_page("/nope", 0),
            Err(OsError::NoSuchFile(_))
        ));
    }

    #[test]
    fn list_filters_by_prefix() {
        let fs = SharedFs::new();
        fs.create("/usr/lib/a.so", 1, 0);
        fs.create("/usr/lib/b.so", 1, 0);
        fs.create("/etc/conf", 1, 0);
        assert_eq!(fs.list("/usr/lib/").len(), 2);
        assert_eq!(fs.file_count(), 3);
    }
}
