//! Address spaces and the page-fault state machine.
//!
//! [`AddressSpace`] combines a [`PageTable`] and a [`VmaTree`] and
//! implements every fault flavour the paper's evaluation accounts for
//! (Fig. 7a "Page Faults" bars, §4.2.1 microcosts):
//!
//! * **anonymous zero-fill** — first touch of heap/stack pages (<1 µs);
//! * **file major / minor** — faulting private file mappings from the
//!   shared root fs (major) or the warm page cache (minor);
//! * **local CoW** — post-`fork` copy-on-write within a node;
//! * **CXL CoW** — store to a checkpointed page mapped read-only from CXL:
//!   copy to local memory + TLB shootdown (≈2.5 µs), the *migrate-on-write*
//!   path (§4.3);
//! * **CXL pull** — *migrate-on-access*: copy on any first touch (Mitosis
//!   and the MoA tiering policy);
//! * **page-table leaf CoW** — an update to an attached checkpoint leaf
//!   copies the whole 512-entry leaf first (§4.2.1);
//! * **VMA-block CoW** — on-demand reconstruction of checkpointed VMA
//!   blocks, re-registering file-system callbacks for file VMAs (§4.2.1).
//!
//! Every successful access additionally passes through the node's LLC
//! model and is charged the local-DRAM or CXL round trip on a miss — the
//! mechanism behind the warm-execution tiering results (Fig. 8b).

use std::collections::BTreeMap;
use std::sync::Arc;

use simclock::{LatencyModel, SimDuration};

use cxl_mem::{CxlDevice, CxlPageId, NodeId, PageData};

use crate::addr::{PhysAddr, VirtPageNum};
use crate::cache::LlcCache;
use crate::error::OsError;
use crate::frame::FrameAllocator;
use crate::fs::SharedFs;
use crate::page_table::PageTable;
use crate::pagecache::PageCache;
use crate::pte::{Pte, PteFlags};
use crate::vma::{Protection, Vma, VmaTree};

/// Extra software flag: this local frame was allocated by (and is private
/// to) this address space, and counts toward its local-memory consumption.
pub(crate) const PRIVATE: PteFlags = PteFlags::from_bits(1 << 9);

/// The kind of memory access being simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// How an address space treats first accesses to CXL-checkpointed pages
/// (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CxlTierPolicy {
    /// No checkpoint backing: ordinary local process.
    #[default]
    LocalOnly,
    /// Migrate-on-write: reads go straight to CXL, stores copy the page to
    /// local memory (CXLfork's default).
    MigrateOnWrite,
    /// Migrate-on-access: any first touch copies the page to local memory
    /// (Mitosis semantics / the MoA policy).
    MigrateOnAccess,
    /// Hybrid: pages whose checkpointed A bit was set migrate on first
    /// access; the rest stay in CXL until written.
    Hybrid,
}

/// Where a checkpointed page's content can be pulled from.
#[derive(Debug, Clone)]
pub enum BackingSource {
    /// A page resident on the shared CXL device (CXLfork checkpoints).
    Device(CxlPageId),
    /// A page resident in another node's memory, fetched with a
    /// store-then-load pair of copies over the CXL fabric (the Mitosis-CXL
    /// adaptation, §6.2: "each 'remote' fault thus includes the latency to
    /// store and fetch data from CXL memory").
    Remote(Arc<PageData>),
}

/// A per-page record of the checkpoint backing an address space restored
/// with a non-attached policy (migrate-on-access).
#[derive(Debug, Clone)]
pub struct BackingPage {
    /// Where the checkpointed page's content lives.
    pub source: BackingSource,
    /// Checkpointed A bit.
    pub accessed: bool,
    /// Checkpointed D bit.
    pub dirty: bool,
    /// Whether the page backs a private file mapping.
    pub file_backed: bool,
}

/// The vpn → checkpointed-page map used by pull-based restore policies.
#[derive(Debug, Default, Clone)]
pub struct CxlBacking {
    map: BTreeMap<u64, BackingPage>,
}

impl CxlBacking {
    /// An empty backing map.
    pub fn new() -> Self {
        CxlBacking::default()
    }

    /// Registers the checkpointed page for `vpn`.
    pub fn insert(&mut self, vpn: VirtPageNum, page: BackingPage) {
        self.map.insert(vpn.0, page);
    }

    /// Looks up the checkpointed page for `vpn`.
    pub fn get(&self, vpn: VirtPageNum) -> Option<BackingPage> {
        self.map.get(&vpn.0).cloned()
    }

    /// Number of backed pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if no pages are backed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates `(vpn, backing)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (VirtPageNum, BackingPage)> + '_ {
        self.map.iter().map(|(v, b)| (VirtPageNum(*v), b.clone()))
    }
}

/// The fault type resolved during an access, for accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Write-protect fault resolved in place (sole CoW owner): no copy.
    UpgradeInPlace,
    /// Anonymous zero-fill.
    AnonZeroFill,
    /// File page read from the shared root filesystem.
    FileMajor,
    /// File page found in the (modelled) page cache.
    FileMinor,
    /// Copy-on-write from a local frame.
    LocalCow,
    /// Copy-on-write from a CXL page (migrate-on-write).
    CxlCow,
    /// Migrate-on-access pull from a CXL page.
    CxlPull,
    /// Migrate-on-access pull from another node's memory via a
    /// store+fetch pair over CXL (Mitosis-CXL remote fault).
    RemotePull,
}

impl FaultKind {
    /// Stable counter name for this fault kind.
    pub fn counter_name(self) -> &'static str {
        match self {
            FaultKind::UpgradeInPlace => "fault_upgrade_in_place",
            FaultKind::AnonZeroFill => "fault_anon_zero_fill",
            FaultKind::FileMajor => "fault_file_major",
            FaultKind::FileMinor => "fault_file_minor",
            FaultKind::LocalCow => "fault_local_cow",
            FaultKind::CxlCow => "fault_cxl_cow",
            FaultKind::CxlPull => "fault_cxl_pull",
            FaultKind::RemotePull => "fault_remote_pull",
        }
    }
}

/// Result of one simulated access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The fault taken, if any.
    pub fault: Option<FaultKind>,
    /// Total modelled cost (fault + memory access).
    pub cost: SimDuration,
    /// Fault-only portion of the cost.
    pub fault_cost: SimDuration,
    /// Whether the LLC intercepted the access.
    pub cache_hit: bool,
    /// Whether the (post-fault) data lives on the CXL tier.
    pub cxl_tier: bool,
    /// Whether a page-table leaf CoW happened on the way.
    pub pt_leaf_cow: bool,
    /// Whether a VMA block was reconstructed on the way.
    pub vma_block_cow: bool,
    /// Transient CXL link errors retried away during the access (their
    /// backoff delay is already included in `cost`).
    pub retries: u32,
}

/// Borrowed node resources a fault needs.
///
/// `Node` assembles this from its fields; tests can construct one from
/// standalone parts.
pub struct MmContext<'a> {
    /// The node's frame allocator.
    pub frames: &'a mut FrameAllocator,
    /// The node's LLC model.
    pub cache: &'a mut LlcCache,
    /// The shared CXL device.
    pub device: &'a CxlDevice,
    /// The shared root filesystem.
    pub rootfs: &'a SharedFs,
    /// The latency model.
    pub model: &'a LatencyModel,
    /// The node's page cache for file-backed pages.
    pub page_cache: &'a mut PageCache,
    /// The node's fabric id.
    pub node: NodeId,
    /// Sequential read-ahead window for file major faults, in pages
    /// (including the faulting page). `1` disables read-ahead.
    pub file_readahead_pages: u64,
}

/// Result of a batched page fill ([`AddressSpace::fill_pages`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FillOutcome {
    /// Pages installed as private local mappings.
    pub installed: u64,
    /// Attached checkpoint leaves copied locally on the way (each costs
    /// one CXL leaf read, charged by the caller).
    pub leaf_cows: u64,
}

/// A process address space.
#[derive(Debug, Default)]
pub struct AddressSpace {
    /// The 4-level page table.
    pub page_table: PageTable,
    /// The VMA tree.
    pub vmas: VmaTree,
    policy: CxlTierPolicy,
    backing: Option<Arc<CxlBacking>>,
    private_local_pages: u64,
}

impl AddressSpace {
    /// An empty address space.
    pub fn new() -> Self {
        AddressSpace::default()
    }

    /// The active tiering policy.
    pub fn policy(&self) -> CxlTierPolicy {
        self.policy
    }

    /// Sets the tiering policy (restore code and CXLporter use this).
    pub fn set_policy(&mut self, policy: CxlTierPolicy) {
        self.policy = policy;
    }

    /// Installs the checkpoint backing map for pull-based policies.
    pub fn set_backing(&mut self, backing: Arc<CxlBacking>) {
        self.backing = Some(backing);
    }

    /// The installed backing map, if any.
    pub fn backing(&self) -> Option<&Arc<CxlBacking>> {
        self.backing.as_ref()
    }

    /// Local frames privately allocated by this address space — the
    /// "local memory consumption" metric of Fig. 7b.
    pub fn private_local_pages(&self) -> u64 {
        self.private_local_pages
    }

    /// Counts one externally allocated private frame against this address
    /// space (restore paths that install frames directly use this).
    pub fn note_private_page(&mut self) {
        self.private_local_pages += 1;
    }

    /// Counts all present local mappings (private or CoW-shared).
    pub fn mapped_local_pages(&self) -> u64 {
        self.page_table
            .iter_populated()
            .iter()
            .filter(|(_, pte)| pte.is_present() && matches!(pte.target(), Some(PhysAddr::Local(_))))
            .count() as u64
    }

    /// Counts present mappings that point at the CXL tier.
    pub fn mapped_cxl_pages(&self) -> u64 {
        self.page_table
            .iter_populated()
            .iter()
            .filter(|(_, pte)| pte.is_present() && matches!(pte.target(), Some(PhysAddr::Cxl(_))))
            .count() as u64
    }

    /// Adds an anonymous VMA of `pages` pages starting at `start_vpn`.
    ///
    /// # Errors
    ///
    /// [`OsError::MappingOverlap`] if the range intersects an existing
    /// VMA.
    pub fn map_anonymous(
        &mut self,
        start_vpn: u64,
        pages: u64,
        prot: Protection,
        label: &str,
    ) -> Result<(), OsError> {
        self.vmas
            .insert(Vma::anonymous(start_vpn, start_vpn + pages, prot, label))?;
        Ok(())
    }

    /// Adds a private file mapping of `pages` pages starting at
    /// `start_vpn`.
    ///
    /// # Errors
    ///
    /// [`OsError::MappingOverlap`] if the range intersects an existing
    /// VMA.
    pub fn map_file(
        &mut self,
        start_vpn: u64,
        pages: u64,
        prot: Protection,
        path: &str,
        file_start_page: u64,
    ) -> Result<(), OsError> {
        self.vmas.insert(Vma::file(
            start_vpn,
            start_vpn + pages,
            prot,
            path,
            file_start_page,
        ))?;
        Ok(())
    }

    /// Installs a mapping directly (restore and prefetch paths). If
    /// `private` the page counts toward this space's local consumption.
    pub fn install_mapping(
        &mut self,
        vpn: VirtPageNum,
        target: PhysAddr,
        flags: PteFlags,
        private: bool,
    ) {
        let flags = if private { flags.union(PRIVATE) } else { flags };
        self.page_table.set(vpn, Pte::mapped(target, flags));
        if private {
            self.private_local_pages += 1;
        }
    }

    /// Installs a batch of prefetched pages as private local mappings in
    /// one sweep (the restore dirty-prefetch path). Each page allocates a
    /// local frame for `data` and maps it with `flags`; leaf CoWs taken
    /// on the way are counted so the caller can charge them.
    ///
    /// On frame exhaustion the fill stops with [`OsError::OutOfMemory`];
    /// pages installed before the failure stay mapped (restore rolls the
    /// whole process back on error).
    ///
    /// # Errors
    ///
    /// [`OsError::OutOfMemory`] if a frame allocation fails mid-batch.
    pub fn fill_pages(
        &mut self,
        pages: impl IntoIterator<Item = (VirtPageNum, PageData)>,
        flags: PteFlags,
        ctx: &mut MmContext<'_>,
    ) -> Result<FillOutcome, OsError> {
        let mut out = FillOutcome::default();
        for (vpn, data) in pages {
            let pfn = ctx.frames.alloc(data)?;
            let set = self
                .page_table
                .set(vpn, Pte::mapped(PhysAddr::Local(pfn), flags | PRIVATE));
            self.private_local_pages += 1;
            out.installed += 1;
            if set.leaf_cow {
                out.leaf_cows += 1;
            }
        }
        Ok(out)
    }

    /// The translation for `vpn` ([`Pte::EMPTY`] if unmapped).
    pub fn translate(&self, vpn: VirtPageNum) -> Pte {
        self.page_table.get(vpn)
    }

    /// Simulates one access to `vpn`, resolving any fault, charging the
    /// cache and memory tier, and updating A/D bits.
    ///
    /// # Errors
    ///
    /// * [`OsError::BadAddress`] — no VMA covers `vpn`.
    /// * [`OsError::ProtectionViolation`] — e.g. store to read-only VMA.
    /// * [`OsError::OutOfMemory`] — a fault needed a local frame and the
    ///   node is full.
    pub fn access(
        &mut self,
        vpn: VirtPageNum,
        access: Access,
        ctx: &mut MmContext<'_>,
    ) -> Result<AccessOutcome, OsError> {
        let mut outcome = AccessOutcome {
            fault: None,
            cost: SimDuration::ZERO,
            fault_cost: SimDuration::ZERO,
            cache_hit: false,
            cxl_tier: false,
            pt_leaf_cow: false,
            vma_block_cow: false,
            retries: 0,
        };

        let pte = self.page_table.get(vpn);
        let needs_fault = !pte.is_present() || (access == Access::Write && !pte.is_writable());
        if needs_fault {
            self.handle_fault(vpn, access, pte, ctx, &mut outcome)?;
        }

        // Post-fault (or fault-free) data access.
        let final_pte = self.page_table.get(vpn);
        let target = final_pte
            .target()
            .unwrap_or_else(|| panic!("present pte without target at {vpn}"));
        outcome.cxl_tier = target.is_cxl();
        let hit = ctx.cache.access(target);
        outcome.cache_hit = hit;
        let mem_cost = if hit {
            ctx.model.cache_hit()
        } else if target.is_cxl() {
            ctx.model.cxl_read_round_trip()
        } else {
            ctx.model.local_read_round_trip()
        };
        outcome.cost += mem_cost;

        // A/D bit maintenance (works on attached leaves for A).
        self.page_table.mark_accessed(vpn);
        if access == Access::Write {
            self.page_table.mark_dirty(vpn);
        }
        Ok(outcome)
    }

    /// Resolves a fault at `vpn`. On return the PTE is present and (for
    /// writes) writable.
    fn handle_fault(
        &mut self,
        vpn: VirtPageNum,
        access: Access,
        pte: Pte,
        ctx: &mut MmContext<'_>,
        outcome: &mut AccessOutcome,
    ) -> Result<(), OsError> {
        // Any fault in an attached VMA block first reconstructs that block
        // locally (copy + re-register fs callbacks for file VMAs, §4.2.1).
        let vma_touch = self.vmas.ensure_local(vpn);
        if vma_touch.block_cow {
            outcome.vma_block_cow = true;
            let mut cost = ctx.model.cxl_copy(crate::PAGE_SIZE);
            let is_file_vma = self
                .vmas
                .find(vpn)
                .map(|v| v.kind.is_file())
                .unwrap_or(false);
            if is_file_vma {
                cost += SimDuration::from_nanos(ctx.model.file_reopen_ns);
            }
            outcome.fault_cost += cost;
            outcome.cost += cost;
        }

        let vma = self
            .vmas
            .find(vpn)
            .cloned()
            .ok_or(OsError::BadAddress(vpn))?;
        if access == Access::Write && !vma.prot.write {
            return Err(OsError::ProtectionViolation(vpn));
        }

        let (kind, new_pte) = if pte.is_present() {
            // Write to a present, non-writable page: CoW or upgrade.
            debug_assert_eq!(access, Access::Write);
            if !(pte.is_cow() || vma.prot.write) {
                return Err(OsError::ProtectionViolation(vpn));
            }
            match pte.target().expect("present pte has a target") {
                PhysAddr::Local(pfn) => {
                    if ctx.frames.refcount(pfn) > 1 {
                        let copy = ctx.frames.duplicate(pfn)?;
                        ctx.frames.dec_ref(pfn);
                        self.private_local_pages += 1;
                        (
                            FaultKind::LocalCow,
                            Pte::mapped(
                                PhysAddr::Local(copy),
                                base_flags(&vma) | PteFlags::DIRTY | PRIVATE,
                            ),
                        )
                    } else {
                        // Sole owner: upgrade in place.
                        (
                            FaultKind::UpgradeInPlace,
                            pte.with_flags(PteFlags::WRITABLE | PteFlags::DIRTY)
                                .without_flags(PteFlags::COW),
                        )
                    }
                }
                PhysAddr::Cxl(page) => {
                    // Migrate-on-write: copy the checkpointed page locally.
                    let data = Self::read_cxl_page(ctx.device, ctx.node, page, outcome)?;
                    let pfn = ctx.frames.alloc(data)?;
                    self.private_local_pages += 1;
                    (
                        FaultKind::CxlCow,
                        Pte::mapped(
                            PhysAddr::Local(pfn),
                            base_flags(&vma) | PteFlags::DIRTY | PRIVATE,
                        ),
                    )
                }
            }
        } else if let Some(target) = pte.target() {
            // Armed (fetch-on-access) entry: hybrid tiering's hot page.
            let PhysAddr::Cxl(page) = target else {
                unreachable!("armed entries always point at CXL")
            };
            self.pull_page(BackingSource::Device(page), access, &vma, ctx, outcome)?
        } else if let Some(b) = self.backing_for(vpn) {
            // Pull policy (migrate-on-access): copy on first touch.
            self.pull_page(b.source, access, &vma, ctx, outcome)?
        } else {
            match &vma.kind {
                // Shared anonymous memory faults like private anonymous
                // memory here (sharing semantics matter only to the fork
                // mechanisms, which refuse to checkpoint it, §4.1).
                crate::vma::VmaKind::Anonymous | crate::vma::VmaKind::SharedAnonymous => {
                    let pfn = ctx.frames.alloc_zeroed()?;
                    self.private_local_pages += 1;
                    let mut flags = base_flags(&vma);
                    if access == Access::Write {
                        flags |= PteFlags::DIRTY;
                    }
                    (
                        FaultKind::AnonZeroFill,
                        Pte::mapped(PhysAddr::Local(pfn), flags | PRIVATE),
                    )
                }
                crate::vma::VmaKind::File { .. } => {
                    let (path, file_page) = vma
                        .file_page_for(vpn)
                        .expect("file vma covers faulting page");
                    // File pages are read-shared through the node's page
                    // cache: the first fault on this node is major (reads
                    // the shared root fs and populates the cache), later
                    // faults are minor and map the same frame.
                    let (kind, pfn) = match ctx.page_cache.lookup(path, file_page) {
                        Some(pfn) => {
                            ctx.frames.inc_ref(pfn);
                            (FaultKind::FileMinor, pfn)
                        }
                        None => {
                            let data = ctx.rootfs.read_page(path, file_page)?;
                            let pfn = ctx.frames.alloc(data)?;
                            ctx.frames.inc_ref(pfn); // the cache's reference
                            ctx.page_cache.insert(path, file_page, pfn);
                            // Optional sequential read-ahead: warm the page
                            // cache with the following pages of the file
                            // while the media is already positioned.
                            let extra = Self::file_readahead(path, file_page, ctx);
                            if extra > 0 {
                                let ra_cost = ctx.model.file_readahead(extra);
                                outcome.fault_cost += ra_cost;
                                outcome.cost += ra_cost;
                            }
                            (FaultKind::FileMajor, pfn)
                        }
                    };
                    if access == Access::Write {
                        // Writing a private file mapping: take a private
                        // copy immediately (the cache keeps the pristine
                        // shared frame).
                        let copy = ctx.frames.duplicate(pfn)?;
                        ctx.frames.dec_ref(pfn);
                        self.private_local_pages += 1;
                        (
                            kind,
                            Pte::mapped(
                                PhysAddr::Local(copy),
                                base_flags(&vma) | PteFlags::FILE | PteFlags::DIRTY | PRIVATE,
                            ),
                        )
                    } else {
                        // Shared, read-only mapping; a later write CoWs
                        // (the cache reference keeps the refcount > 1).
                        let mut flags = PteFlags::PRESENT | PteFlags::FILE;
                        if vma.prot.write {
                            flags |= PteFlags::COW;
                        }
                        (kind, Pte::mapped(PhysAddr::Local(pfn), flags))
                    }
                }
            }
        };

        let fault_cost = match kind {
            FaultKind::UpgradeInPlace => ctx.model.minor_fault(),
            FaultKind::AnonZeroFill => ctx.model.local_anon_fault(),
            FaultKind::FileMajor => ctx.model.file_major_fault(),
            FaultKind::FileMinor => ctx.model.minor_fault(),
            FaultKind::LocalCow => ctx.model.local_cow_fault(),
            FaultKind::CxlCow => ctx.model.cxl_cow_fault(),
            FaultKind::CxlPull => ctx.model.cxl_pull_fault(),
            // Store on the parent side + fetch on the child side, plus the
            // parent-side fault-handler work that serves the request.
            FaultKind::RemotePull => {
                ctx.model.cxl_pull_fault()
                    + ctx.model.cxl_write_copy(crate::PAGE_SIZE)
                    + SimDuration::from_nanos(ctx.model.fault_base_ns)
            }
        };
        outcome.fault = Some(kind);
        outcome.fault_cost += fault_cost;
        outcome.cost += fault_cost;

        let set = self.page_table.set(vpn, new_pte);
        if set.leaf_cow {
            outcome.pt_leaf_cow = true;
            // Copying a 4 KiB leaf from CXL to local memory.
            let leaf_cost = ctx.model.cxl_copy(crate::PAGE_SIZE);
            outcome.fault_cost += leaf_cost;
            outcome.cost += leaf_cost;
        }
        Ok(())
    }

    /// Reads a checkpointed page from the device, retrying transient
    /// link errors with bounded exponential backoff. The (virtual)
    /// backoff delay is charged to the outcome, so injected faults show
    /// up in latency reports, not just error counts.
    fn read_cxl_page(
        device: &CxlDevice,
        node: NodeId,
        page: CxlPageId,
        outcome: &mut AccessOutcome,
    ) -> Result<PageData, OsError> {
        let policy = cxl_fault::BackoffPolicy::default();
        let (res, report) = cxl_fault::with_backoff(&policy, || device.read_page(page, node));
        outcome.retries += report.retries;
        outcome.fault_cost += report.backoff;
        outcome.cost += report.backoff;
        res.map_err(|e| {
            if e.is_transient() {
                OsError::DeviceRetriesExhausted {
                    attempts: report.attempts,
                    last: e,
                }
            } else {
                OsError::from(e)
            }
        })
    }

    /// Best-effort sequential read-ahead after a file major fault: pulls
    /// up to `ctx.file_readahead_pages - 1` following pages of the same
    /// file into the node's page cache. Cache-only — no mappings are
    /// installed, so later faults on these pages are minor. The scan
    /// stops quietly at the file end or on frame exhaustion. Returns how
    /// many extra pages were actually read from the media.
    fn file_readahead(path: &str, file_page: u64, ctx: &mut MmContext<'_>) -> u64 {
        let window = ctx.file_readahead_pages.max(1);
        let mut extra = 0;
        for fp in file_page + 1..file_page + window {
            if ctx.page_cache.lookup(path, fp).is_some() {
                continue; // already warm
            }
            let Ok(data) = ctx.rootfs.read_page(path, fp) else {
                break; // past the file end
            };
            // The freshly allocated reference belongs to the cache.
            let Ok(pfn) = ctx.frames.alloc(data) else {
                break; // node full: read-ahead is strictly best-effort
            };
            ctx.page_cache.insert(path, fp, pfn);
            extra += 1;
        }
        extra
    }

    fn backing_for(&self, vpn: VirtPageNum) -> Option<BackingPage> {
        match self.policy {
            CxlTierPolicy::MigrateOnAccess => self.backing.as_ref()?.get(vpn),
            _ => None,
        }
    }

    /// Copies a checkpointed page to local memory on first touch.
    fn pull_page(
        &mut self,
        source: BackingSource,
        access: Access,
        vma: &Vma,
        ctx: &mut MmContext<'_>,
        outcome: &mut AccessOutcome,
    ) -> Result<(FaultKind, Pte), OsError> {
        let (kind, data) = match source {
            BackingSource::Device(page) => (
                FaultKind::CxlPull,
                Self::read_cxl_page(ctx.device, ctx.node, page, outcome)?,
            ),
            BackingSource::Remote(data) => (FaultKind::RemotePull, (*data).clone()),
        };
        let pfn = ctx.frames.alloc(data)?;
        self.private_local_pages += 1;
        let mut flags = base_flags(vma);
        if access == Access::Write {
            flags |= PteFlags::DIRTY;
        }
        Ok((kind, Pte::mapped(PhysAddr::Local(pfn), flags | PRIVATE)))
    }

    /// Removes the whole VMA containing `vpn` (an `munmap` of the full
    /// area), unmapping its pages and releasing their local frames.
    /// Returns the removed VMA and the modelled cost.
    ///
    /// # Errors
    ///
    /// [`OsError::BadAddress`] if no VMA covers `vpn`.
    pub fn munmap(
        &mut self,
        vpn: VirtPageNum,
        ctx: &mut MmContext<'_>,
    ) -> Result<(Vma, SimDuration), OsError> {
        let (vma, touch) = self.vmas.remove(vpn).ok_or(OsError::BadAddress(vpn))?;
        let mut unmapped = 0u64;
        for page in vma.start..vma.end {
            let page = VirtPageNum(page);
            let (old, _) = self.page_table.unmap(page);
            if old.is_empty() {
                continue;
            }
            unmapped += 1;
            if old.is_present() {
                if let Some(PhysAddr::Local(pfn)) = old.target() {
                    ctx.cache.invalidate(PhysAddr::Local(pfn));
                    ctx.frames.dec_ref(pfn);
                    if old.flags().contains(PRIVATE) {
                        self.private_local_pages = self.private_local_pages.saturating_sub(1);
                    }
                }
            }
        }
        let mut cost = SimDuration::from_nanos(ctx.model.fork_pte_copy_ns) * unmapped
            + SimDuration::from_nanos(ctx.model.tlb_shootdown_ns);
        if touch.block_cow {
            cost += ctx.model.cxl_copy(crate::PAGE_SIZE);
        }
        Ok((vma, cost))
    }

    /// Changes the protection of the whole VMA containing `vpn` (an
    /// `mprotect` of the full area). Removing write permission
    /// write-protects every present local mapping (one TLB shootdown);
    /// granting it lets subsequent write faults upgrade or copy as usual.
    /// Returns the modelled cost.
    ///
    /// # Errors
    ///
    /// [`OsError::BadAddress`] if no VMA covers `vpn`.
    pub fn mprotect(
        &mut self,
        vpn: VirtPageNum,
        prot: Protection,
        ctx: &mut MmContext<'_>,
    ) -> Result<SimDuration, OsError> {
        let touch = self
            .vmas
            .set_protection(vpn, prot)
            .ok_or(OsError::BadAddress(vpn))?;
        let vma = self.vmas.find(vpn).cloned().expect("just updated");
        let mut updated = 0u64;
        if !prot.write {
            for page in vma.start..vma.end {
                let page = VirtPageNum(page);
                let pte = self.page_table.get(page);
                if pte.is_present() && pte.is_writable() {
                    self.page_table
                        .set(page, pte.without_flags(PteFlags::WRITABLE));
                    updated += 1;
                }
            }
        }
        let mut cost = SimDuration::from_nanos(ctx.model.fork_pte_copy_ns) * updated
            + SimDuration::from_nanos(ctx.model.tlb_shootdown_ns);
        if touch.block_cow {
            cost += ctx.model.cxl_copy(crate::PAGE_SIZE);
        }
        Ok(cost)
    }

    /// Tears down all mappings, releasing local frames back to the
    /// allocator. Called when the process exits.
    pub fn teardown(&mut self, ctx: &mut MmContext<'_>) {
        for (vpn, pte) in self.page_table.iter_populated() {
            if let Some(PhysAddr::Local(pfn)) = pte.target() {
                // Attached leaves never hold local targets, so every local
                // target sits in a leaf we own a reference through.
                if pte.is_present() {
                    ctx.cache.invalidate(PhysAddr::Local(pfn));
                    ctx.frames.dec_ref(pfn);
                    let _ = vpn;
                }
            }
        }
        self.page_table = PageTable::new();
        self.vmas = VmaTree::new();
        self.private_local_pages = 0;
    }

    /// Duplicates this address space for a local fork: anonymous present
    /// pages become CoW-shared (refcount bumped, both sides write-
    /// protected); file-backed PTEs are dropped so the child re-faults them
    /// from the warm page cache (§7.1 discusses this lazily-repopulated
    /// file state). Returns the child space and the modelled fork cost.
    pub fn fork_into(
        &mut self,
        ctx: &mut MmContext<'_>,
    ) -> Result<(AddressSpace, SimDuration), OsError> {
        let mut child = AddressSpace::new();
        let mut cost = SimDuration::from_nanos(ctx.model.process_create_ns);

        // VMA tree: full local copy.
        for vma in self.vmas.iter() {
            cost += SimDuration::from_nanos(ctx.model.fork_vma_copy_ns);
            child
                .vmas
                .insert(vma.clone())
                .expect("source tree is disjoint");
        }

        // Page tables: copy anon PTEs with CoW; skip file PTEs.
        let mut parent_updates: Vec<(VirtPageNum, Pte)> = Vec::new();
        for (vpn, pte) in self.page_table.iter_populated() {
            if !pte.is_present() {
                // Armed entries: the child shares the same checkpoint
                // backing; copy verbatim.
                child.page_table.set(vpn, pte);
                cost += SimDuration::from_nanos(ctx.model.fork_pte_copy_ns);
                continue;
            }
            if pte.flags().contains(PteFlags::FILE) {
                continue; // lazily re-faulted by the child
            }
            cost += SimDuration::from_nanos(ctx.model.fork_pte_copy_ns);
            match pte.target().expect("present pte has target") {
                PhysAddr::Local(pfn) => {
                    ctx.frames.inc_ref(pfn);
                    let shared = pte
                        .with_flags(PteFlags::COW)
                        .without_flags(PteFlags::WRITABLE | PteFlags::DIRTY);
                    parent_updates.push((vpn, shared));
                    child.page_table.set(vpn, shared.without_flags(PRIVATE));
                }
                PhysAddr::Cxl(_) => {
                    // CXL read-only mappings are shared as-is.
                    child.page_table.set(vpn, pte.without_flags(PRIVATE));
                }
            }
        }
        for (vpn, pte) in parent_updates {
            self.page_table.set(vpn, pte);
        }
        child.policy = self.policy;
        child.backing = self.backing.clone();
        Ok((child, cost))
    }
}

/// Base PTE flags for a freshly resolved private page in `vma`.
fn base_flags(vma: &Vma) -> PteFlags {
    let mut flags = PteFlags::PRESENT;
    if vma.prot.write {
        flags |= PteFlags::WRITABLE;
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheConfig, LlcCache};

    struct World {
        frames: FrameAllocator,
        cache: LlcCache,
        device: Arc<CxlDevice>,
        rootfs: Arc<SharedFs>,
        model: LatencyModel,
        page_cache: PageCache,
        file_readahead_pages: u64,
    }

    impl World {
        fn new() -> Self {
            let rootfs = Arc::new(SharedFs::new());
            rootfs.create("/lib/libc.so", 64 * crate::PAGE_SIZE, 42);
            World {
                frames: FrameAllocator::new(4096),
                cache: LlcCache::new(CacheConfig::default()),
                device: Arc::new(CxlDevice::with_capacity_mib(16)),
                rootfs,
                model: LatencyModel::calibrated(),
                page_cache: PageCache::new(),
                file_readahead_pages: 1,
            }
        }

        fn ctx(&mut self) -> MmContext<'_> {
            MmContext {
                frames: &mut self.frames,
                cache: &mut self.cache,
                device: &self.device,
                rootfs: &self.rootfs,
                model: &self.model,
                page_cache: &mut self.page_cache,
                node: NodeId(0),
                file_readahead_pages: self.file_readahead_pages,
            }
        }
    }

    #[test]
    fn anon_first_touch_zero_fills() {
        let mut w = World::new();
        let mut asp = AddressSpace::new();
        asp.map_anonymous(100, 10, Protection::read_write(), "heap")
            .unwrap();
        let o = asp
            .access(VirtPageNum(105), Access::Read, &mut w.ctx())
            .unwrap();
        assert_eq!(o.fault, Some(FaultKind::AnonZeroFill));
        assert!(o.fault_cost.as_nanos() < 1_000, "anon fault <1us");
        assert_eq!(asp.private_local_pages(), 1);
        // Second access: no fault, cache hit.
        let o2 = asp
            .access(VirtPageNum(105), Access::Read, &mut w.ctx())
            .unwrap();
        assert_eq!(o2.fault, None);
        assert!(o2.cache_hit);
    }

    #[test]
    fn unmapped_access_is_bad_address() {
        let mut w = World::new();
        let mut asp = AddressSpace::new();
        assert!(matches!(
            asp.access(VirtPageNum(5), Access::Read, &mut w.ctx()),
            Err(OsError::BadAddress(_))
        ));
    }

    #[test]
    fn write_to_read_only_vma_is_protection_violation() {
        let mut w = World::new();
        let mut asp = AddressSpace::new();
        asp.map_anonymous(0, 4, Protection::read_only(), "ro")
            .unwrap();
        assert!(matches!(
            asp.access(VirtPageNum(1), Access::Write, &mut w.ctx()),
            Err(OsError::ProtectionViolation(_))
        ));
    }

    #[test]
    fn file_fault_reads_shared_fs_and_respects_page_cache() {
        let mut w = World::new();
        let mut asp = AddressSpace::new();
        asp.map_file(0, 8, Protection::read_exec(), "/lib/libc.so", 0)
            .unwrap();
        let o = asp
            .access(VirtPageNum(2), Access::Read, &mut w.ctx())
            .unwrap();
        assert_eq!(o.fault, Some(FaultKind::FileMajor));
        // Verify the mapped frame holds the file's bytes.
        let pte = asp.translate(VirtPageNum(2));
        let Some(PhysAddr::Local(pfn)) = pte.target() else {
            panic!()
        };
        assert_eq!(
            *w.frames.data(pfn),
            w.rootfs.read_page("/lib/libc.so", 2).unwrap()
        );

        // A second process on the same node hits the warm page cache:
        // minor fault mapping the SAME frame.
        let mut asp2 = AddressSpace::new();
        asp2.map_file(0, 8, Protection::read_exec(), "/lib/libc.so", 0)
            .unwrap();
        let o2 = asp2
            .access(VirtPageNum(2), Access::Read, &mut w.ctx())
            .unwrap();
        assert_eq!(o2.fault, Some(FaultKind::FileMinor));
        assert!(o2.fault_cost < o.fault_cost);
        let Some(PhysAddr::Local(pfn2)) = asp2.translate(VirtPageNum(2)).target() else {
            panic!()
        };
        assert_eq!(pfn2, pfn, "page cache shares the frame");
        assert_eq!(asp2.private_local_pages(), 0, "shared file pages are free");
    }

    #[test]
    fn cxl_cow_copies_and_isolates() {
        let mut w = World::new();
        let region = w.device.create_region("ckpt");
        let page = w.device.alloc_page(region).unwrap();
        w.device
            .write_page(page, PageData::pattern(7), NodeId(9))
            .unwrap();

        let mut asp = AddressSpace::new();
        asp.map_anonymous(0, 4, Protection::read_write(), "data")
            .unwrap();
        asp.install_mapping(
            VirtPageNum(1),
            PhysAddr::Cxl(page),
            PteFlags::PRESENT | PteFlags::COW,
            false,
        );

        // Reads are served from CXL directly, no fault.
        let r = asp
            .access(VirtPageNum(1), Access::Read, &mut w.ctx())
            .unwrap();
        assert_eq!(r.fault, None);
        assert!(r.cxl_tier);

        // A store migrates-on-write.
        let fp_before = w.device.fingerprint(page).unwrap();
        let o = asp
            .access(VirtPageNum(1), Access::Write, &mut w.ctx())
            .unwrap();
        assert_eq!(o.fault, Some(FaultKind::CxlCow));
        let us = o.fault_cost.as_nanos();
        assert!((2_000..=3_000).contains(&us), "cxl cow {us} ns");
        // Data was copied, checkpoint pristine.
        let pte = asp.translate(VirtPageNum(1));
        assert!(pte.is_writable());
        let Some(PhysAddr::Local(pfn)) = pte.target() else {
            panic!()
        };
        assert_eq!(*w.frames.data(pfn), PageData::pattern(7));
        w.frames.data_mut(pfn).write(0, &[0xFF]);
        assert_eq!(w.device.fingerprint(page).unwrap(), fp_before);
        assert_eq!(asp.private_local_pages(), 1);
    }

    #[test]
    fn migrate_on_access_pulls_on_read() {
        let mut w = World::new();
        let region = w.device.create_region("ckpt");
        let page = w.device.alloc_page(region).unwrap();
        w.device
            .write_page(page, PageData::pattern(3), NodeId(9))
            .unwrap();

        let mut asp = AddressSpace::new();
        asp.map_anonymous(0, 4, Protection::read_write(), "data")
            .unwrap();
        asp.set_policy(CxlTierPolicy::MigrateOnAccess);
        let mut backing = CxlBacking::new();
        backing.insert(
            VirtPageNum(2),
            BackingPage {
                source: BackingSource::Device(page),
                accessed: true,
                dirty: false,
                file_backed: false,
            },
        );
        asp.set_backing(Arc::new(backing));

        let o = asp
            .access(VirtPageNum(2), Access::Read, &mut w.ctx())
            .unwrap();
        assert_eq!(o.fault, Some(FaultKind::CxlPull));
        assert!(!o.cxl_tier, "page now local");
        assert_eq!(asp.private_local_pages(), 1);
        // Second read: plain local access.
        let o2 = asp
            .access(VirtPageNum(2), Access::Read, &mut w.ctx())
            .unwrap();
        assert_eq!(o2.fault, None);
    }

    #[test]
    fn armed_entry_pulls_regardless_of_policy() {
        let mut w = World::new();
        let region = w.device.create_region("ckpt");
        let page = w.device.alloc_page(region).unwrap();
        let mut asp = AddressSpace::new();
        asp.map_anonymous(0, 4, Protection::read_write(), "data")
            .unwrap();
        asp.set_policy(CxlTierPolicy::Hybrid);
        asp.page_table.set(
            VirtPageNum(0),
            Pte::armed(PhysAddr::Cxl(page), PteFlags::FETCH_ON_ACCESS),
        );
        let o = asp
            .access(VirtPageNum(0), Access::Read, &mut w.ctx())
            .unwrap();
        assert_eq!(o.fault, Some(FaultKind::CxlPull));
    }

    #[test]
    fn fork_shares_then_isolates_on_write() {
        let mut w = World::new();
        let mut parent = AddressSpace::new();
        parent
            .map_anonymous(0, 8, Protection::read_write(), "heap")
            .unwrap();
        // Parent dirties two pages.
        parent
            .access(VirtPageNum(0), Access::Write, &mut w.ctx())
            .unwrap();
        parent
            .access(VirtPageNum(1), Access::Write, &mut w.ctx())
            .unwrap();
        let Some(PhysAddr::Local(p0)) = parent.translate(VirtPageNum(0)).target() else {
            panic!()
        };
        w.frames.data_mut(p0).write(0, &[0xAB]);

        let (mut child, cost) = parent.fork_into(&mut w.ctx()).unwrap();
        assert!(cost >= SimDuration::from_nanos(w.model.process_create_ns));
        assert_eq!(w.frames.refcount(p0), 2);
        assert_eq!(child.private_local_pages(), 0, "shared pages are free");

        // Child reads the parent's bytes.
        let pte = child.translate(VirtPageNum(0));
        assert!(!pte.is_writable());
        assert!(pte.is_cow());
        let Some(PhysAddr::Local(cp)) = pte.target() else {
            panic!()
        };
        assert_eq!(cp, p0);
        assert_eq!(w.frames.data(cp).byte_at(0), 0xAB);

        // Child write CoWs; parent's byte survives.
        let o = child
            .access(VirtPageNum(0), Access::Write, &mut w.ctx())
            .unwrap();
        assert_eq!(o.fault, Some(FaultKind::LocalCow));
        let Some(PhysAddr::Local(c2)) = child.translate(VirtPageNum(0)).target() else {
            panic!()
        };
        assert_ne!(c2, p0);
        assert_eq!(w.frames.data(p0).byte_at(0), 0xAB);
        assert_eq!(w.frames.refcount(p0), 1);
        assert_eq!(child.private_local_pages(), 1);

        // Parent write to the *other* shared page upgrades in place after
        // the child's copy ... but the child still shares page 1, so the
        // parent must CoW too.
        let o2 = parent
            .access(VirtPageNum(1), Access::Write, &mut w.ctx())
            .unwrap();
        assert_eq!(o2.fault, Some(FaultKind::LocalCow));
    }

    #[test]
    fn sole_owner_write_upgrades_in_place() {
        let mut w = World::new();
        let mut parent = AddressSpace::new();
        parent
            .map_anonymous(0, 2, Protection::read_write(), "heap")
            .unwrap();
        parent
            .access(VirtPageNum(0), Access::Write, &mut w.ctx())
            .unwrap();
        let (mut child, _) = parent.fork_into(&mut w.ctx()).unwrap();
        // Child exits without writing.
        child.teardown(&mut w.ctx());
        // Parent is sole owner again: write is an in-place upgrade.
        let o = parent
            .access(VirtPageNum(0), Access::Write, &mut w.ctx())
            .unwrap();
        assert_eq!(o.fault, Some(FaultKind::UpgradeInPlace));
        assert_eq!(parent.private_local_pages(), 1, "no extra frame allocated");
    }

    #[test]
    fn fork_drops_file_ptes_for_lazy_refault() {
        let mut w = World::new();
        let mut parent = AddressSpace::new();
        parent
            .map_file(0, 8, Protection::read_exec(), "/lib/libc.so", 0)
            .unwrap();
        parent
            .access(VirtPageNum(3), Access::Read, &mut w.ctx())
            .unwrap();
        let (mut child, _) = parent.fork_into(&mut w.ctx()).unwrap();
        assert!(child.translate(VirtPageNum(3)).is_empty());
        // Child re-faults from the warm page cache: a minor fault.
        let o = child
            .access(VirtPageNum(3), Access::Read, &mut w.ctx())
            .unwrap();
        assert_eq!(o.fault, Some(FaultKind::FileMinor));
    }

    #[test]
    fn teardown_returns_all_frames() {
        let mut w = World::new();
        let mut asp = AddressSpace::new();
        asp.map_anonymous(0, 64, Protection::read_write(), "heap")
            .unwrap();
        for i in 0..64 {
            asp.access(VirtPageNum(i), Access::Write, &mut w.ctx())
                .unwrap();
        }
        assert_eq!(w.frames.used(), 64);
        asp.teardown(&mut w.ctx());
        assert_eq!(w.frames.used(), 0);
        assert_eq!(asp.private_local_pages(), 0);
    }

    #[test]
    fn oom_propagates_from_fault() {
        let mut w = World::new();
        w.frames = FrameAllocator::new(2);
        let mut asp = AddressSpace::new();
        asp.map_anonymous(0, 8, Protection::read_write(), "heap")
            .unwrap();
        asp.access(VirtPageNum(0), Access::Write, &mut w.ctx())
            .unwrap();
        asp.access(VirtPageNum(1), Access::Write, &mut w.ctx())
            .unwrap();
        assert!(matches!(
            asp.access(VirtPageNum(2), Access::Write, &mut w.ctx()),
            Err(OsError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn munmap_releases_frames_and_accounting() {
        let mut w = World::new();
        let mut asp = AddressSpace::new();
        asp.map_anonymous(0, 16, Protection::read_write(), "heap")
            .unwrap();
        asp.map_anonymous(100, 4, Protection::read_write(), "other")
            .unwrap();
        for i in 0..16 {
            asp.access(VirtPageNum(i), Access::Write, &mut w.ctx())
                .unwrap();
        }
        assert_eq!(w.frames.used(), 16);
        let (vma, cost) = asp.munmap(VirtPageNum(5), &mut w.ctx()).unwrap();
        assert_eq!((vma.start, vma.end), (0, 16));
        assert!(cost > SimDuration::ZERO);
        assert_eq!(w.frames.used(), 0);
        assert_eq!(asp.private_local_pages(), 0);
        // The range is gone; the other VMA survives.
        assert!(matches!(
            asp.access(VirtPageNum(5), Access::Read, &mut w.ctx()),
            Err(OsError::BadAddress(_))
        ));
        assert!(asp
            .access(VirtPageNum(101), Access::Write, &mut w.ctx())
            .is_ok());
        // munmap of an unmapped page errors.
        assert!(matches!(
            asp.munmap(VirtPageNum(500), &mut w.ctx()),
            Err(OsError::BadAddress(_))
        ));
    }

    #[test]
    fn munmap_respects_cow_sharing() {
        let mut w = World::new();
        let mut parent = AddressSpace::new();
        parent
            .map_anonymous(0, 2, Protection::read_write(), "heap")
            .unwrap();
        parent
            .access(VirtPageNum(0), Access::Write, &mut w.ctx())
            .unwrap();
        let (mut child, _) = parent.fork_into(&mut w.ctx()).unwrap();
        let Some(PhysAddr::Local(pfn)) = parent.translate(VirtPageNum(0)).target() else {
            panic!()
        };
        assert_eq!(w.frames.refcount(pfn), 2);
        // Child unmaps: parent's frame survives.
        child.munmap(VirtPageNum(0), &mut w.ctx()).unwrap();
        assert_eq!(w.frames.refcount(pfn), 1);
        assert_eq!(w.frames.data(pfn).byte_at(0), 0);
    }

    #[test]
    fn mprotect_write_protects_and_reallows() {
        let mut w = World::new();
        let mut asp = AddressSpace::new();
        asp.map_anonymous(0, 4, Protection::read_write(), "heap")
            .unwrap();
        asp.access(VirtPageNum(1), Access::Write, &mut w.ctx())
            .unwrap();
        asp.mprotect(VirtPageNum(1), Protection::read_only(), &mut w.ctx())
            .unwrap();
        assert!(matches!(
            asp.access(VirtPageNum(1), Access::Write, &mut w.ctx()),
            Err(OsError::ProtectionViolation(_))
        ));
        // Reads still work.
        asp.access(VirtPageNum(1), Access::Read, &mut w.ctx())
            .unwrap();
        // Re-allow writes: the next store upgrades via a fault.
        asp.mprotect(VirtPageNum(1), Protection::read_write(), &mut w.ctx())
            .unwrap();
        let o = asp
            .access(VirtPageNum(1), Access::Write, &mut w.ctx())
            .unwrap();
        assert_eq!(o.fault, Some(FaultKind::UpgradeInPlace));
        assert!(matches!(
            asp.mprotect(VirtPageNum(900), Protection::read_only(), &mut w.ctx()),
            Err(OsError::BadAddress(_))
        ));
    }

    #[test]
    fn shared_anonymous_faults_like_anonymous() {
        let mut w = World::new();
        let mut asp = AddressSpace::new();
        let mut vma = Vma::anonymous(0, 4, Protection::read_write(), "shm");
        vma.kind = crate::vma::VmaKind::SharedAnonymous;
        asp.vmas.insert(vma).unwrap();
        let o = asp
            .access(VirtPageNum(0), Access::Write, &mut w.ctx())
            .unwrap();
        assert_eq!(o.fault, Some(FaultKind::AnonZeroFill));
    }

    #[test]
    fn fill_pages_installs_batch_and_counts_accounting() {
        let mut w = World::new();
        let mut asp = AddressSpace::new();
        asp.map_anonymous(0, 16, Protection::read_write(), "heap")
            .unwrap();
        let batch: Vec<(VirtPageNum, PageData)> = (0..8)
            .map(|i| (VirtPageNum(i), PageData::pattern(i)))
            .collect();
        let out = asp
            .fill_pages(
                batch,
                PteFlags::PRESENT | PteFlags::WRITABLE | PteFlags::DIRTY,
                &mut w.ctx(),
            )
            .unwrap();
        assert_eq!(out.installed, 8);
        assert_eq!(out.leaf_cows, 0, "local leaves never CoW");
        assert_eq!(asp.private_local_pages(), 8);
        assert_eq!(w.frames.used(), 8);
        for i in 0..8 {
            let pte = asp.translate(VirtPageNum(i));
            assert!(pte.is_present() && pte.is_writable());
            let Some(PhysAddr::Local(pfn)) = pte.target() else {
                panic!()
            };
            assert_eq!(*w.frames.data(pfn), PageData::pattern(i));
        }
        // No fault on later access: the fill really installed mappings.
        let o = asp
            .access(VirtPageNum(3), Access::Write, &mut w.ctx())
            .unwrap();
        assert_eq!(o.fault, None);
    }

    #[test]
    fn fill_pages_stops_on_frame_exhaustion() {
        let mut w = World::new();
        w.frames = FrameAllocator::new(2);
        let mut asp = AddressSpace::new();
        asp.map_anonymous(0, 8, Protection::read_write(), "heap")
            .unwrap();
        let batch: Vec<(VirtPageNum, PageData)> = (0..4)
            .map(|i| (VirtPageNum(i), PageData::zeroed()))
            .collect();
        let err = asp
            .fill_pages(batch, PteFlags::PRESENT | PteFlags::WRITABLE, &mut w.ctx())
            .unwrap_err();
        assert!(matches!(err, OsError::OutOfMemory { .. }));
        // The pages installed before the failure stay mapped (the caller
        // rolls the whole process back).
        assert_eq!(asp.private_local_pages(), 2);
    }

    #[test]
    fn file_readahead_warms_cache_and_is_off_by_default() {
        // Default window (1): a major fault caches only its own page.
        let mut w = World::new();
        let mut asp = AddressSpace::new();
        asp.map_file(0, 16, Protection::read_exec(), "/lib/libc.so", 0)
            .unwrap();
        let base = asp
            .access(VirtPageNum(0), Access::Read, &mut w.ctx())
            .unwrap();
        assert_eq!(base.fault, Some(FaultKind::FileMajor));
        let o = asp
            .access(VirtPageNum(1), Access::Read, &mut w.ctx())
            .unwrap();
        assert_eq!(o.fault, Some(FaultKind::FileMajor), "no read-ahead");

        // Window of 4: one major fault pre-reads the next three pages,
        // charging the media reads to the faulting access; the following
        // touches are minor faults served from the warm cache.
        let mut w = World::new();
        w.file_readahead_pages = 4;
        let mut asp = AddressSpace::new();
        asp.map_file(0, 16, Protection::read_exec(), "/lib/libc.so", 0)
            .unwrap();
        let major = asp
            .access(VirtPageNum(0), Access::Read, &mut w.ctx())
            .unwrap();
        assert_eq!(major.fault, Some(FaultKind::FileMajor));
        assert_eq!(
            major.fault_cost,
            base.fault_cost + w.model.file_readahead(3),
            "read-ahead charges exactly the extra media reads"
        );
        for i in 1..4 {
            let o = asp
                .access(VirtPageNum(i), Access::Read, &mut w.ctx())
                .unwrap();
            assert_eq!(o.fault, Some(FaultKind::FileMinor), "page {i} was warm");
        }
        let o = asp
            .access(VirtPageNum(4), Access::Read, &mut w.ctx())
            .unwrap();
        assert_eq!(o.fault, Some(FaultKind::FileMajor), "past the window");
    }

    #[test]
    fn file_readahead_stops_at_file_end_and_when_node_is_full() {
        let mut w = World::new();
        w.file_readahead_pages = 64;
        w.rootfs.create("/tiny", 2 * crate::PAGE_SIZE, 7);
        let mut asp = AddressSpace::new();
        asp.map_file(0, 2, Protection::read_exec(), "/tiny", 0)
            .unwrap();
        let o = asp
            .access(VirtPageNum(0), Access::Read, &mut w.ctx())
            .unwrap();
        assert_eq!(o.fault, Some(FaultKind::FileMajor));
        // Only one page follows in the file: read-ahead charged one page.
        assert_eq!(w.frames.used(), 2);

        // A nearly-full node degrades to no read-ahead, not an error.
        let mut w = World::new();
        w.file_readahead_pages = 64;
        w.frames = FrameAllocator::new(1);
        let mut asp = AddressSpace::new();
        asp.map_file(0, 16, Protection::read_exec(), "/lib/libc.so", 0)
            .unwrap();
        let o = asp
            .access(VirtPageNum(0), Access::Read, &mut w.ctx())
            .unwrap();
        assert_eq!(o.fault, Some(FaultKind::FileMajor));
        assert_eq!(w.frames.used(), 1, "read-ahead stopped at capacity");
    }

    #[test]
    fn cache_miss_charges_tier_latency() {
        let mut w = World::new();
        let region = w.device.create_region("r");
        let page = w.device.alloc_page(region).unwrap();
        let mut asp = AddressSpace::new();
        asp.map_anonymous(0, 2, Protection::read_only(), "ro")
            .unwrap();
        asp.install_mapping(
            VirtPageNum(0),
            PhysAddr::Cxl(page),
            PteFlags::PRESENT,
            false,
        );
        let miss = asp
            .access(VirtPageNum(0), Access::Read, &mut w.ctx())
            .unwrap();
        assert!(!miss.cache_hit);
        assert_eq!(miss.cost.as_nanos(), w.model.cxl_round_trip_ns);
        let hit = asp
            .access(VirtPageNum(0), Access::Read, &mut w.ctx())
            .unwrap();
        assert!(hit.cache_hit);
        assert!(hit.cost < miss.cost);
    }
}
