//! The node-local physical frame allocator.
//!
//! Frames are refcounted so local-fork copy-on-write can share a frame
//! between parent and child until one of them writes. The allocator has a
//! hard capacity: the memory-constrained CXLporter experiments (Fig. 10c)
//! shrink it to 50 % / 25 % and rely on [`OsError::OutOfMemory`] to force
//! container recycling.

use cxl_mem::PageData;

use crate::addr::Pfn;
use crate::error::OsError;

/// A refcounted pool of local 4 KiB frames with a hard capacity.
///
/// # Example
///
/// ```
/// use cxl_mem::PageData;
/// use node_os::frame::FrameAllocator;
///
/// # fn main() -> Result<(), node_os::OsError> {
/// let mut frames = FrameAllocator::new(128);
/// let pfn = frames.alloc(PageData::pattern(1))?;
/// frames.inc_ref(pfn); // share it (e.g. fork CoW)
/// assert_eq!(frames.refcount(pfn), 2);
/// frames.dec_ref(pfn); // child unmaps
/// frames.dec_ref(pfn); // parent unmaps -> freed
/// assert_eq!(frames.used(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FrameAllocator {
    capacity: u64,
    slots: Vec<Option<Frame>>,
    free: Vec<u64>,
    used: u64,
    /// High-water mark of `used`, for experiment reporting.
    peak_used: u64,
}

#[derive(Debug)]
struct Frame {
    data: PageData,
    refcount: u32,
}

impl FrameAllocator {
    /// Creates an allocator with `capacity` frames of local memory.
    pub fn new(capacity: u64) -> Self {
        FrameAllocator {
            capacity,
            slots: Vec::new(),
            free: Vec::new(),
            used: 0,
            peak_used: 0,
        }
    }

    /// Creates an allocator sized in MiB.
    pub fn with_capacity_mib(mib: u64) -> Self {
        FrameAllocator::new(mib * 1024 * 1024 / crate::PAGE_SIZE)
    }

    /// Total capacity in frames.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Frames currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Highest simultaneous allocation seen.
    pub fn peak_used(&self) -> u64 {
        self.peak_used
    }

    /// Frames currently free.
    pub fn available(&self) -> u64 {
        self.capacity - self.used
    }

    /// Fraction of capacity in use, `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            return 1.0;
        }
        self.used as f64 / self.capacity as f64
    }

    /// Allocates one frame holding `data`, with refcount 1.
    ///
    /// # Errors
    ///
    /// [`OsError::OutOfMemory`] if the node is at capacity.
    pub fn alloc(&mut self, data: PageData) -> Result<Pfn, OsError> {
        if self.used >= self.capacity {
            return Err(OsError::OutOfMemory {
                requested: 1,
                available: 0,
            });
        }
        let frame = Frame { data, refcount: 1 };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize] = Some(frame);
                idx
            }
            None => {
                self.slots.push(Some(frame));
                (self.slots.len() - 1) as u64
            }
        };
        self.used += 1;
        self.peak_used = self.peak_used.max(self.used);
        Ok(Pfn(idx))
    }

    /// Allocates a zero-filled frame.
    ///
    /// # Errors
    ///
    /// [`OsError::OutOfMemory`] if the node is at capacity.
    pub fn alloc_zeroed(&mut self) -> Result<Pfn, OsError> {
        self.alloc(PageData::zeroed())
    }

    fn frame(&self, pfn: Pfn) -> Option<&Frame> {
        self.slots.get(pfn.0 as usize).and_then(Option::as_ref)
    }

    fn frame_mut(&mut self, pfn: Pfn) -> Option<&mut Frame> {
        self.slots.get_mut(pfn.0 as usize).and_then(Option::as_mut)
    }

    /// Current refcount of a frame (0 if not live).
    pub fn refcount(&self, pfn: Pfn) -> u32 {
        self.frame(pfn).map_or(0, |f| f.refcount)
    }

    /// Iterates every live frame with its refcount, for cross-layer
    /// auditing (`cxl-check` balances these against PTE and page-cache
    /// references).
    pub fn live_pfns(&self) -> impl Iterator<Item = (Pfn, u32)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|f| (Pfn(i as u64), f.refcount)))
    }

    /// Increments the refcount (CoW sharing on fork).
    ///
    /// # Panics
    ///
    /// Panics if the frame is not live — an OS invariant violation.
    pub fn inc_ref(&mut self, pfn: Pfn) {
        self.frame_mut(pfn)
            .unwrap_or_else(|| panic!("inc_ref on dead frame {pfn}"))
            .refcount += 1;
    }

    /// Decrements the refcount, freeing the frame when it reaches zero.
    /// Returns `true` if the frame was freed.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not live.
    pub fn dec_ref(&mut self, pfn: Pfn) -> bool {
        let frame = self
            .frame_mut(pfn)
            .unwrap_or_else(|| panic!("dec_ref on dead frame {pfn}"));
        frame.refcount -= 1;
        if frame.refcount == 0 {
            self.slots[pfn.0 as usize] = None;
            self.free.push(pfn.0);
            self.used -= 1;
            true
        } else {
            false
        }
    }

    /// Reads the contents of a frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not live.
    pub fn data(&self, pfn: Pfn) -> &PageData {
        &self
            .frame(pfn)
            .unwrap_or_else(|| panic!("read of dead frame {pfn}"))
            .data
    }

    /// Mutates the contents of a frame.
    ///
    /// Callers must ensure exclusivity (refcount 1) before writing through
    /// a CoW mapping; the page-fault handler enforces this.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not live.
    pub fn data_mut(&mut self, pfn: Pfn) -> &mut PageData {
        &mut self
            .frame_mut(pfn)
            .unwrap_or_else(|| panic!("write of dead frame {pfn}"))
            .data
    }

    /// Duplicates a frame's contents into a new frame with refcount 1 (the
    /// data-copy half of a CoW fault).
    ///
    /// # Errors
    ///
    /// [`OsError::OutOfMemory`] if no frame is free.
    ///
    /// # Panics
    ///
    /// Panics if the source frame is not live.
    pub fn duplicate(&mut self, pfn: Pfn) -> Result<Pfn, OsError> {
        let data = self.data(pfn).clone();
        self.alloc(data)
    }

    /// Resets the peak-usage watermark to the current usage.
    pub fn reset_peak(&mut self) {
        self.peak_used = self.used;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_until_capacity_then_oom() {
        let mut a = FrameAllocator::new(2);
        a.alloc_zeroed().unwrap();
        a.alloc_zeroed().unwrap();
        let err = a.alloc_zeroed().unwrap_err();
        assert_eq!(
            err,
            OsError::OutOfMemory {
                requested: 1,
                available: 0
            }
        );
        assert_eq!(a.used(), 2);
        assert_eq!(a.available(), 0);
    }

    #[test]
    fn refcounting_frees_at_zero() {
        let mut a = FrameAllocator::new(4);
        let p = a.alloc(PageData::pattern(9)).unwrap();
        a.inc_ref(p);
        assert!(!a.dec_ref(p));
        assert_eq!(a.used(), 1);
        assert!(a.dec_ref(p));
        assert_eq!(a.used(), 0);
        assert_eq!(a.refcount(p), 0);
    }

    #[test]
    fn freed_frames_are_recycled() {
        let mut a = FrameAllocator::new(2);
        let p = a.alloc_zeroed().unwrap();
        a.dec_ref(p);
        let q = a.alloc(PageData::pattern(1)).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn duplicate_copies_content_independently() {
        let mut a = FrameAllocator::new(4);
        let p = a.alloc(PageData::pattern(5)).unwrap();
        let q = a.duplicate(p).unwrap();
        assert_ne!(p, q);
        assert_eq!(a.data(p), a.data(q));
        a.data_mut(q).write(0, &[0xEE]);
        assert_ne!(a.data(p), a.data(q));
        assert_eq!(a.refcount(q), 1);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut a = FrameAllocator::new(8);
        let p1 = a.alloc_zeroed().unwrap();
        let p2 = a.alloc_zeroed().unwrap();
        a.dec_ref(p1);
        a.dec_ref(p2);
        assert_eq!(a.used(), 0);
        assert_eq!(a.peak_used(), 2);
        a.reset_peak();
        assert_eq!(a.peak_used(), 0);
    }

    #[test]
    #[should_panic(expected = "dead frame")]
    fn dec_ref_on_dead_frame_panics() {
        let mut a = FrameAllocator::new(2);
        let p = a.alloc_zeroed().unwrap();
        a.dec_ref(p);
        a.dec_ref(p);
    }

    #[test]
    fn utilization_reflects_usage() {
        let mut a = FrameAllocator::new(4);
        assert_eq!(a.utilization(), 0.0);
        a.alloc_zeroed().unwrap();
        assert!((a.utilization() - 0.25).abs() < 1e-12);
        assert_eq!(FrameAllocator::new(0).utilization(), 1.0);
    }

    #[test]
    fn with_capacity_mib_converts() {
        let a = FrameAllocator::with_capacity_mib(1);
        assert_eq!(a.capacity(), 256);
    }
}
