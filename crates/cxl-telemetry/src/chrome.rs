//! Chrome `trace_event` export.
//!
//! Produces the JSON Array-with-metadata format understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): one
//! complete event (`"ph": "X"`) per finished span, with the fabric node
//! id mapped to the thread id so each node renders as its own timeline
//! row. Timestamps are virtual time expressed in microseconds (the
//! trace viewer's native unit); exact nanosecond values are preserved in
//! `args.dur_ns` so tooling never has to re-parse floats.

use crate::json::Json;
use crate::span::{SpanRecord, TRACK_GLOBAL};

/// Converts nanoseconds to the trace viewer's microsecond unit. Above
/// 2^53 ns (~104 virtual days) this rounds; `args.dur_ns` keeps the
/// exact value.
fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

fn track_name(track: u32) -> String {
    if track == TRACK_GLOBAL {
        "global".to_owned()
    } else {
        format!("node{track}")
    }
}

/// Renders spans as a Chrome `trace_event` JSON document.
///
/// The output is deterministic: events appear in the order the spans
/// were closed, metadata events first.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut events = Vec::new();

    // Name the process once, and each thread (track) on first sight.
    events.push(Json::obj(vec![
        ("name", Json::Str("process_name".to_owned())),
        ("ph", Json::Str("M".to_owned())),
        ("pid", Json::Int(1)),
        ("tid", Json::Int(0)),
        (
            "args",
            Json::obj(vec![("name", Json::Str("cxlfork-sim".to_owned()))]),
        ),
    ]));
    let mut seen_tracks = Vec::new();
    for span in spans {
        if !seen_tracks.contains(&span.track) {
            seen_tracks.push(span.track);
        }
    }
    seen_tracks.sort_unstable();
    for track in seen_tracks {
        events.push(Json::obj(vec![
            ("name", Json::Str("thread_name".to_owned())),
            ("ph", Json::Str("M".to_owned())),
            ("pid", Json::Int(1)),
            ("tid", Json::Int(i64::from(track))),
            (
                "args",
                Json::obj(vec![("name", Json::Str(track_name(track)))]),
            ),
        ]));
    }

    for span in spans {
        let mut args = vec![
            ("depth", Json::Int(i64::from(span.depth))),
            ("dur_ns", Json::Int(span.dur_ns() as i64)),
        ];
        for (k, v) in &span.attrs {
            args.push((k.as_str(), Json::Int(*v as i64)));
        }
        events.push(Json::obj(vec![
            ("name", Json::Str(span.name.clone())),
            ("cat", Json::Str("sim".to_owned())),
            ("ph", Json::Str("X".to_owned())),
            ("pid", Json::Int(1)),
            ("tid", Json::Int(i64::from(span.track))),
            ("ts", Json::Float(us(span.start.as_nanos()))),
            ("dur", Json::Float(us(span.dur_ns()))),
            (
                "args",
                Json::Obj(args.into_iter().map(|(k, v)| (k.to_owned(), v)).collect()),
            ),
        ]));
    }

    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ns".to_owned())),
    ])
    .to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::SimTime;

    fn span(name: &str, track: u32, start: u64, end: u64, depth: u32) -> SpanRecord {
        SpanRecord {
            name: name.to_owned(),
            track,
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
            depth,
            attrs: vec![("pages".to_owned(), 7)],
        }
    }

    #[test]
    fn trace_parses_back_and_preserves_ns() {
        let out = chrome_trace(&[span("core.checkpoint", 0, 1_500, 4_750, 0)]);
        let doc = Json::parse(&out).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let ev = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .unwrap();
        assert_eq!(ev.get("name").unwrap().as_str(), Some("core.checkpoint"));
        // 1500 ns = 1.5 µs, 3250 ns = 3.25 µs.
        assert_eq!(ev.get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(ev.get("dur").unwrap().as_f64(), Some(3.25));
        let args = ev.get("args").unwrap();
        assert_eq!(args.get("dur_ns").unwrap().as_u64(), Some(3_250));
        assert_eq!(args.get("pages").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn tracks_get_thread_metadata() {
        let out = chrome_trace(&[span("a", 0, 0, 1, 0), span("b", TRACK_GLOBAL, 0, 1, 0)]);
        let doc = Json::parse(&out).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
            })
            .collect();
        assert_eq!(names, vec!["node0", "global"]);
    }

    #[test]
    fn sub_microsecond_spans_keep_nanosecond_resolution() {
        let out = chrome_trace(&[span("tiny", 0, 1, 2, 0)]);
        let doc = Json::parse(&out).unwrap();
        let ev = &doc.get("traceEvents").unwrap().as_arr().unwrap()[2];
        assert_eq!(ev.get("ts").unwrap().as_f64(), Some(0.001));
        assert_eq!(
            ev.get("args").unwrap().get("dur_ns").unwrap().as_u64(),
            Some(1)
        );
    }
}
