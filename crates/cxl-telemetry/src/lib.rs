//! # cxl-telemetry — virtual-clock-native observability
//!
//! The simulation's instruments: structured [`SpanRecord`]s charged to
//! `simclock` virtual time, a process-wide [`MetricsRegistry`] of
//! counters/gauges/latency timers keyed by `(layer, name, node)`, and two
//! exporters — Chrome `trace_event` JSON ([`chrome_trace`]) and the
//! stable [`BenchReport`] schema behind `BENCH_<scenario>.json`.
//!
//! ## Always-on, nearly-free
//!
//! Instrumentation calls are compiled into the hot paths of every layer
//! (`cxl-mem`, `node-os`, `core`, `cxlporter`, `faas`), but they are
//! inert until a sink is armed: the fast path is **one relaxed atomic
//! load** — the same discipline `cxl_mem::FaultHook` uses for fault
//! injection. No allocation, no lock, no formatting happens while
//! unarmed, and recording never advances a clock, so an armed run
//! observes byte-identical virtual-time behaviour to an unarmed one.
//!
//! ## Sessions
//!
//! A [`TelemetrySession`] arms the process-wide sink and collects
//! everything recorded until [`TelemetrySession::finish`] returns the
//! [`TelemetryData`]. Only one session exists at a time; concurrent
//! tests must serialize around it (the harness uses a static mutex).
//!
//! ```
//! use cxl_telemetry::{span, TelemetrySession};
//! use simclock::SimTime;
//!
//! let session = TelemetrySession::start();
//! cxl_telemetry::counter_add("cxl_mem", "bytes_read", Some(0), 4096);
//! let pages = 64u64;
//! span!(
//!     "checkpoint.copy_pages",
//!     0,
//!     SimTime::ZERO,
//!     SimTime::from_nanos(500),
//!     pages
//! );
//! let data = session.finish();
//! assert_eq!(data.registry.counter("cxl_mem", "bytes_read", Some(0)), 4096);
//! assert_eq!(data.spans.len(), 1);
//! assert_eq!(data.spans[0].attrs, vec![("pages".to_string(), 64)]);
//! ```

pub mod chrome;
pub mod json;
pub mod registry;
pub mod report;
pub mod span;

use std::sync::atomic::{AtomicBool, Ordering};

// cxl-lint: allow(raw-lock): cxl-telemetry sits below cxl-mem in the layering, so lockdep's TrackedMutex is unavailable here
use parking_lot::Mutex;
use simclock::{SimDuration, SimTime};

pub use chrome::chrome_trace;
pub use json::{Json, JsonError};
pub use registry::{MetricKey, MetricsRegistry};
pub use report::{BenchReport, LatencySummary, SCHEMA_VERSION};
pub use span::{SpanBuffer, SpanRecord, TRACK_GLOBAL};

/// Fast-path flag: `true` only while a [`TelemetrySession`] is live.
/// Checked with one relaxed load before anything else happens.
static ARMED: AtomicBool = AtomicBool::new(false);

/// The armed sink. Lock order: callers may hold device/node locks when
/// recording, so nothing inside this lock ever calls back into the
/// simulation layers.
// cxl-lint: allow(raw-lock): leaf lock below the lockdep layer; nothing inside it calls back up (see lock-order note above)
static SINK: Mutex<Option<SinkState>> = Mutex::new(None);

#[derive(Debug, Default)]
struct SinkState {
    registry: MetricsRegistry,
    spans: SpanBuffer,
}

/// `true` while a telemetry session is armed (one relaxed atomic load).
#[inline]
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Adds `n` to counter `layer.name{node=}`. No-op while unarmed.
#[inline]
pub fn counter_add(layer: &str, name: &str, node: Option<u32>, n: u64) {
    if !is_armed() {
        return;
    }
    if let Some(state) = SINK.lock().as_mut() {
        state.registry.counter_add(layer, name, node, n);
    }
}

/// Sets gauge `layer.name{node=}` to `v`. No-op while unarmed.
#[inline]
pub fn gauge_set(layer: &str, name: &str, node: Option<u32>, v: i64) {
    if !is_armed() {
        return;
    }
    if let Some(state) = SINK.lock().as_mut() {
        state.registry.gauge_set(layer, name, node, v);
    }
}

/// Records one duration sample into timer `layer.name{node=}`. No-op
/// while unarmed.
#[inline]
pub fn timer_record(layer: &str, name: &str, node: Option<u32>, d: SimDuration) {
    if !is_armed() {
        return;
    }
    if let Some(state) = SINK.lock().as_mut() {
        state.registry.timer_record(layer, name, node, d);
    }
}

/// Records a complete leaf span. No-op while unarmed; `attrs` stays a
/// borrowed slice so the unarmed path allocates nothing.
#[inline]
pub fn record_span(name: &str, track: u32, start: SimTime, end: SimTime, attrs: &[(&str, u64)]) {
    if !is_armed() {
        return;
    }
    if let Some(state) = SINK.lock().as_mut() {
        let attrs = attrs.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect();
        state.spans.record(name, track, start, end, attrs);
    }
}

/// Opens a span on `track`; spans recorded before the matching
/// [`span_close`] nest one level deeper. No-op while unarmed.
#[inline]
pub fn span_open(name: &str, track: u32, start: SimTime, attrs: &[(&str, u64)]) {
    if !is_armed() {
        return;
    }
    if let Some(state) = SINK.lock().as_mut() {
        let attrs = attrs.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect();
        state.spans.open(name, track, start, attrs);
    }
}

/// Closes the innermost open span on `track`. No-op while unarmed or
/// when no span is open there (an unbalanced close is harmless).
#[inline]
pub fn span_close(track: u32, end: SimTime) {
    if !is_armed() {
        return;
    }
    if let Some(state) = SINK.lock().as_mut() {
        state.spans.close(track, end);
    }
}

/// Records a complete leaf span with identifier-named attributes.
///
/// ```
/// # use cxl_telemetry::span;
/// # use simclock::SimTime;
/// # let (t0, t1) = (SimTime::ZERO, SimTime::from_nanos(10));
/// let pages = 8u64;
/// span!("checkpoint.copy_pages", 0, t0, t1, pages);           // attr from variable
/// span!("checkpoint.rebase", 0, t0, t1, pointers = 3 + 4);    // attr from expression
/// span!("checkpoint.serialize", 0, t0, t1);                   // no attrs
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr, $track:expr, $start:expr, $end:expr $(,)?) => {
        $crate::record_span($name, $track, $start, $end, &[])
    };
    ($name:expr, $track:expr, $start:expr, $end:expr, $($attr:ident = $val:expr),+ $(,)?) => {
        $crate::record_span(
            $name,
            $track,
            $start,
            $end,
            &[$((stringify!($attr), ($val) as u64)),+],
        )
    };
    ($name:expr, $track:expr, $start:expr, $end:expr, $($attr:ident),+ $(,)?) => {
        $crate::record_span(
            $name,
            $track,
            $start,
            $end,
            &[$((stringify!($attr), ($attr) as u64)),+],
        )
    };
}

/// Everything one session recorded.
#[derive(Debug, Default)]
pub struct TelemetryData {
    /// The counters, gauges and timers.
    pub registry: MetricsRegistry,
    /// Finished spans in close order.
    pub spans: Vec<SpanRecord>,
}

/// RAII guard over the armed process-wide sink.
///
/// [`start`](TelemetrySession::start) arms, [`finish`](TelemetrySession::finish)
/// disarms and returns the [`TelemetryData`]; dropping without finishing
/// disarms and discards. Starting a new session replaces any prior one,
/// so concurrent users must serialize externally.
#[derive(Debug)]
pub struct TelemetrySession {
    finished: bool,
}

impl TelemetrySession {
    /// Arms the sink with a fresh registry and span buffer.
    pub fn start() -> TelemetrySession {
        *SINK.lock() = Some(SinkState::default());
        ARMED.store(true, Ordering::SeqCst);
        TelemetrySession { finished: false }
    }

    /// Disarms the sink and returns everything it recorded.
    pub fn finish(mut self) -> TelemetryData {
        self.finished = true;
        ARMED.store(false, Ordering::SeqCst);
        let state = SINK.lock().take().unwrap_or_default();
        TelemetryData {
            registry: state.registry,
            spans: state.spans.into_spans(),
        }
    }
}

impl Drop for TelemetrySession {
    fn drop(&mut self) {
        if !self.finished {
            ARMED.store(false, Ordering::SeqCst);
            *SINK.lock() = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sink is process-global; tests in this module serialize on it.
    // cxl-lint: allow(raw-lock): test-only serialization of the process-global sink; below the lockdep layer
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn unarmed_calls_record_nothing() {
        let _guard = TEST_LOCK.lock();
        assert!(!is_armed());
        counter_add("l", "c", None, 1);
        timer_record("l", "t", None, SimDuration::from_nanos(1));
        span!("x", 0, t(0), t(1));
        span_open("y", 0, t(0), &[]);
        span_close(0, t(1));

        let session = TelemetrySession::start();
        let data = session.finish();
        assert!(data.registry.is_empty(), "unarmed records must not leak in");
        assert!(data.spans.is_empty());
    }

    #[test]
    fn session_collects_and_disarms() {
        let _guard = TEST_LOCK.lock();
        let session = TelemetrySession::start();
        assert!(is_armed());
        counter_add("cxl_mem", "reads", Some(1), 3);
        gauge_set("cxlporter", "queue_depth", None, 5);
        span_open("core.checkpoint", 0, t(0), &[]);
        span!("core.checkpoint.copy_pages", 0, t(0), t(40), pages = 2);
        span_close(0, t(100));
        let data = session.finish();
        assert!(!is_armed());

        assert_eq!(data.registry.counter("cxl_mem", "reads", Some(1)), 3);
        assert_eq!(
            data.registry.gauge("cxlporter", "queue_depth", None),
            Some(5)
        );
        assert_eq!(data.spans.len(), 2);
        let child = &data.spans[0];
        let parent = &data.spans[1];
        assert_eq!(child.name, "core.checkpoint.copy_pages");
        assert_eq!(child.depth, 1);
        assert_eq!(child.attrs, vec![("pages".to_owned(), 2)]);
        assert_eq!(parent.name, "core.checkpoint");
        assert_eq!(parent.depth, 0);
        assert_eq!(parent.dur_ns(), 100);
    }

    #[test]
    fn drop_without_finish_disarms() {
        let _guard = TEST_LOCK.lock();
        {
            let _session = TelemetrySession::start();
            assert!(is_armed());
        }
        assert!(!is_armed());
        let session = TelemetrySession::start();
        let data = session.finish();
        assert!(data.registry.is_empty(), "dropped session must not leak");
    }

    #[test]
    fn span_macro_attr_forms() {
        let _guard = TEST_LOCK.lock();
        let session = TelemetrySession::start();
        let pages = 7u64;
        let node = 2u32;
        span!("a", 0, t(0), t(1), pages, node);
        span!("b", 0, t(0), t(1), bytes = 4096u64 * 2);
        span!("c", 0, t(0), t(1));
        let data = session.finish();
        assert_eq!(
            data.spans[0].attrs,
            vec![("pages".to_owned(), 7), ("node".to_owned(), 2)]
        );
        assert_eq!(data.spans[1].attrs, vec![("bytes".to_owned(), 8192)]);
        assert!(data.spans[2].attrs.is_empty());
    }
}
