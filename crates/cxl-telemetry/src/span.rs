//! Structured spans on the virtual clock.
//!
//! A span is a named interval of **virtual** time on one track (a track
//! is a fabric node id, or [`TRACK_GLOBAL`] for cluster-wide work). Spans
//! nest: depth is assigned from the per-track stack of currently-open
//! spans, so a `core.checkpoint` parent opened around its
//! `core.checkpoint.copy_pages` child renders as a nested bar in the
//! Chrome trace viewer.
//!
//! Recording never advances any clock — telemetry observes virtual time,
//! it does not spend it.

use simclock::SimTime;

/// Track id for spans not tied to a single node (porter-level work).
pub const TRACK_GLOBAL: u32 = u32::MAX;

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Dotted span name, e.g. `core.checkpoint.copy_pages`.
    pub name: String,
    /// Timeline the span belongs to (node id, or [`TRACK_GLOBAL`]).
    pub track: u32,
    /// Virtual start time.
    pub start: SimTime,
    /// Virtual end time (`>= start`).
    pub end: SimTime,
    /// Nesting depth: 0 for top-level, parent depth + 1 for children.
    pub depth: u32,
    /// Typed attributes (`("pages", 42)`), in recording order.
    pub attrs: Vec<(String, u64)>,
}

impl SpanRecord {
    /// The span's virtual duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        (self.end - self.start).as_nanos()
    }
}

/// An in-flight span opened with [`SpanBuffer::open`].
#[derive(Debug, Clone)]
struct OpenSpan {
    name: String,
    track: u32,
    start: SimTime,
    attrs: Vec<(String, u64)>,
}

/// Accumulates spans for one telemetry session.
///
/// Finished spans are kept in close order; per-track stacks of open
/// spans supply the nesting depth. A leaf span whose interval is already
/// known can skip open/close and be recorded directly with
/// [`SpanBuffer::record`] — it still inherits the depth of whatever is
/// open on its track.
#[derive(Debug, Default)]
pub struct SpanBuffer {
    finished: Vec<SpanRecord>,
    /// `(track, open spans on that track, innermost last)`.
    open: Vec<(u32, Vec<OpenSpan>)>,
}

impl SpanBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        SpanBuffer::default()
    }

    fn open_depth(&self, track: u32) -> u32 {
        self.open
            .iter()
            .find(|(t, _)| *t == track)
            .map_or(0, |(_, stack)| stack.len() as u32)
    }

    /// Opens a span; children recorded before the matching
    /// [`close`](SpanBuffer::close) nest one level deeper.
    pub fn open(&mut self, name: &str, track: u32, start: SimTime, attrs: Vec<(String, u64)>) {
        let span = OpenSpan {
            name: name.to_owned(),
            track,
            start,
            attrs,
        };
        if let Some((_, stack)) = self.open.iter_mut().find(|(t, _)| *t == track) {
            stack.push(span);
        } else {
            self.open.push((track, vec![span]));
        }
    }

    /// Closes the innermost open span on `track`. Returns `false` (and
    /// records nothing) if no span is open there.
    pub fn close(&mut self, track: u32, end: SimTime) -> bool {
        let Some((_, stack)) = self.open.iter_mut().find(|(t, _)| *t == track) else {
            return false;
        };
        let Some(span) = stack.pop() else {
            return false;
        };
        let depth = stack.len() as u32;
        self.finished.push(SpanRecord {
            name: span.name,
            track: span.track,
            start: span.start,
            end: end.max(span.start),
            depth,
            attrs: span.attrs,
        });
        true
    }

    /// Records a complete leaf span at the current nesting depth of its
    /// track.
    pub fn record(
        &mut self,
        name: &str,
        track: u32,
        start: SimTime,
        end: SimTime,
        attrs: Vec<(String, u64)>,
    ) {
        let depth = self.open_depth(track);
        self.finished.push(SpanRecord {
            name: name.to_owned(),
            track,
            start,
            end: end.max(start),
            depth,
            attrs,
        });
    }

    /// Number of finished spans.
    pub fn len(&self) -> usize {
        self.finished.len()
    }

    /// `true` if no span has finished yet.
    pub fn is_empty(&self) -> bool {
        self.finished.is_empty()
    }

    /// Consumes the buffer, returning finished spans in close order.
    /// Still-open spans are dropped (a session that ends mid-span loses
    /// only that span, not the buffer).
    pub fn into_spans(self) -> Vec<SpanRecord> {
        self.finished
    }

    /// Read access to the finished spans.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn leaf_spans_default_to_depth_zero() {
        let mut buf = SpanBuffer::new();
        buf.record("a", 0, t(0), t(10), vec![]);
        assert_eq!(buf.spans()[0].depth, 0);
        assert_eq!(buf.spans()[0].dur_ns(), 10);
    }

    #[test]
    fn children_nest_under_open_parents() {
        let mut buf = SpanBuffer::new();
        buf.open("parent", 1, t(0), vec![("pid".into(), 9)]);
        buf.record("child.a", 1, t(0), t(4), vec![]);
        buf.open("child.b", 1, t(4), vec![]);
        buf.record("grandchild", 1, t(4), t(6), vec![]);
        assert!(buf.close(1, t(6)));
        assert!(buf.close(1, t(10)));

        let spans = buf.into_spans();
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("parent").depth, 0);
        assert_eq!(by_name("child.a").depth, 1);
        assert_eq!(by_name("child.b").depth, 1);
        assert_eq!(by_name("grandchild").depth, 2);
        assert_eq!(by_name("parent").attrs, vec![("pid".to_owned(), 9)]);
    }

    #[test]
    fn tracks_are_independent() {
        let mut buf = SpanBuffer::new();
        buf.open("on_zero", 0, t(0), vec![]);
        buf.record("on_one", 1, t(0), t(5), vec![]);
        assert!(buf.close(0, t(8)));
        let spans = buf.into_spans();
        assert!(spans.iter().all(|s| s.depth == 0));
    }

    #[test]
    fn close_without_open_is_harmless() {
        let mut buf = SpanBuffer::new();
        assert!(!buf.close(3, t(1)));
        assert!(buf.is_empty());
    }

    #[test]
    fn end_is_clamped_to_start() {
        let mut buf = SpanBuffer::new();
        buf.record("x", 0, t(10), t(5), vec![]);
        assert_eq!(buf.spans()[0].dur_ns(), 0);
    }
}
