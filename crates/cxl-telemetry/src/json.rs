//! A minimal, dependency-free JSON tree.
//!
//! The build environment vendors `serde` as a marker-trait stub (see
//! `vendor/serde`), so the exporters serialize through this hand-rolled
//! tree instead. It supports exactly what the telemetry formats need:
//! objects with ordered keys, arrays, strings, booleans, `null`, exact
//! 64-bit integers (histogram nanoseconds must survive a round trip
//! bit-for-bit) and floats (Chrome trace timestamps are fractional
//! microseconds).
//!
//! Serialization is deterministic: object keys keep insertion order and
//! integers format without any floating-point detour, so a re-generated
//! [`crate::BenchReport`] is byte-identical when the simulation is.

use std::fmt;

/// A parsed or buildable JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer that fits `i64` (covers every counter and nanosecond
    /// value the telemetry formats emit).
    Int(i64),
    /// A non-integer number (Chrome trace `ts`/`dur` microseconds).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the parser gave up at.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Looks up a key in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative `u64`, if it is an integer ≥ 0.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as a slice of elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items.as_slice()),
            _ => None,
        }
    }

    /// Parses a JSON document. Trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the byte offset of the first malformed token.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    let text = format!("{v}");
                    let integral = !text.contains(['.', 'e', 'E']);
                    out.push_str(&text);
                    if integral {
                        out.push_str(".0"); // keep the float/int distinction
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid float"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let doc = Json::obj(vec![
            ("name", Json::Str("cold_start".into())),
            ("ok", Json::Bool(true)),
            ("count", Json::Int(42)),
            ("neg", Json::Int(-7)),
            (
                "items",
                Json::Arr(vec![
                    Json::Null,
                    Json::Int(1),
                    Json::Str("a\"b\\c\n".into()),
                ]),
            ),
        ]);
        let text = doc.to_json();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_floats_and_whitespace() {
        let v = Json::parse(" { \"ts\" : 12.345 , \"e\": 1e3 } ").unwrap();
        assert_eq!(v.get("ts").unwrap().as_f64(), Some(12.345));
        assert_eq!(v.get("e").unwrap().as_f64(), Some(1000.0));
        assert_eq!(v.get("ts").unwrap().as_i64(), None, "floats are not ints");
    }

    #[test]
    fn large_nanosecond_integers_are_exact() {
        let ns: i64 = 9_007_199_254_740_993; // 2^53 + 1: not representable in f64
        let text = Json::Int(ns).to_json();
        assert_eq!(Json::parse(&text).unwrap().as_i64(), Some(ns));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = Json::parse("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }
}
