//! The stable `BenchReport` schema behind `BENCH_<scenario>.json`.
//!
//! A report is the machine-readable result of one bench scenario: total
//! virtual time, a named phase breakdown (the Fig. 7a stacks), latency
//! summaries with exact P50/P99 (Fig. 10), and the counter snapshot the
//! run accumulated. Everything is integer nanoseconds — regenerating a
//! report from the same seeded run produces a byte-identical file, which
//! is what lets CI fail on perf drift.

use simclock::stats::LatencyHistogram;

use crate::json::{Json, JsonError};

/// Version stamp written into every report. Bump when a field changes
/// meaning; readers reject versions they do not understand.
pub const SCHEMA_VERSION: i64 = 1;

/// Exact percentile summary of one latency distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencySummary {
    /// Distribution name, e.g. `e2e` or `core.restore.latency`.
    pub name: String,
    /// Number of recorded samples.
    pub samples: u64,
    /// Median, nanoseconds.
    pub p50_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// Arithmetic mean, nanoseconds.
    pub mean_ns: u64,
    /// Largest sample, nanoseconds.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Summarizes a histogram under `name`.
    pub fn from_histogram(name: &str, h: &LatencyHistogram) -> Self {
        let mut h = h.clone();
        LatencySummary {
            name: name.to_owned(),
            samples: h.len() as u64,
            p50_ns: h.p50().as_nanos(),
            p99_ns: h.p99().as_nanos(),
            mean_ns: h.mean().as_nanos(),
            max_ns: h.max().as_nanos(),
        }
    }
}

/// One scenario's machine-readable result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BenchReport {
    /// Scenario name (`cold_start`, `tiering`, `availability`).
    pub scenario: String,
    /// Total virtual time the scenario covered, nanoseconds.
    pub virtual_ns: u64,
    /// Named phase breakdown in insertion order (checkpoint/restore
    /// phases first, by convention).
    pub phases: Vec<(String, u64)>,
    /// Latency distributions; must include one named `e2e`.
    pub latencies: Vec<LatencySummary>,
    /// Counter snapshot as `layer.name{node=N}` → value, sorted by key.
    pub counters: Vec<(String, u64)>,
}

impl BenchReport {
    /// Creates an empty report for `scenario`.
    pub fn new(scenario: &str) -> Self {
        BenchReport {
            scenario: scenario.to_owned(),
            ..BenchReport::default()
        }
    }

    /// Adds a phase bucket.
    pub fn phase(&mut self, name: &str, ns: u64) {
        self.phases.push((name.to_owned(), ns));
    }

    /// Reads a phase bucket back (`None` if absent).
    pub fn phase_ns(&self, name: &str) -> Option<u64> {
        self.phases
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, ns)| *ns)
    }

    /// Adds a latency summary.
    pub fn latency(&mut self, summary: LatencySummary) {
        self.latencies.push(summary);
    }

    /// Looks a latency summary up by name.
    pub fn latency_named(&self, name: &str) -> Option<&LatencySummary> {
        self.latencies.iter().find(|l| l.name == name)
    }

    /// Checks structural invariants the schema promises consumers:
    /// non-empty scenario name, an `e2e` latency distribution, every
    /// summary internally consistent (`p50 <= p99 <= max`, sampled
    /// distributions non-degenerate), and unique phase/latency names.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.scenario.is_empty() {
            return Err("scenario name is empty".to_owned());
        }
        let e2e = self
            .latency_named("e2e")
            .ok_or_else(|| "missing required `e2e` latency distribution".to_owned())?;
        if e2e.samples == 0 {
            return Err("`e2e` latency distribution has no samples".to_owned());
        }
        for l in &self.latencies {
            if !(l.p50_ns <= l.p99_ns && l.p99_ns <= l.max_ns) {
                return Err(format!(
                    "latency `{}` is not ordered: p50={} p99={} max={}",
                    l.name, l.p50_ns, l.p99_ns, l.max_ns
                ));
            }
            if l.samples > 0 && l.max_ns > 0 && l.mean_ns > l.max_ns {
                return Err(format!("latency `{}` mean exceeds max", l.name));
            }
        }
        for (i, (name, _)) in self.phases.iter().enumerate() {
            if self.phases[..i].iter().any(|(n, _)| n == name) {
                return Err(format!("duplicate phase `{name}`"));
            }
        }
        for (i, l) in self.latencies.iter().enumerate() {
            if self.latencies[..i].iter().any(|p| p.name == l.name) {
                return Err(format!("duplicate latency `{}`", l.name));
            }
        }
        Ok(())
    }

    /// Serializes to the stable on-disk JSON form (compact, one line,
    /// trailing newline).
    pub fn to_json(&self) -> String {
        let mut doc = Json::obj(vec![
            ("schema", Json::Int(SCHEMA_VERSION)),
            ("scenario", Json::Str(self.scenario.clone())),
            ("virtual_ns", Json::Int(self.virtual_ns as i64)),
        ]);
        let phases = Json::Arr(
            self.phases
                .iter()
                .map(|(name, ns)| {
                    Json::obj(vec![
                        ("name", Json::Str(name.clone())),
                        ("ns", Json::Int(*ns as i64)),
                    ])
                })
                .collect(),
        );
        let latencies = Json::Arr(
            self.latencies
                .iter()
                .map(|l| {
                    Json::obj(vec![
                        ("name", Json::Str(l.name.clone())),
                        ("samples", Json::Int(l.samples as i64)),
                        ("p50_ns", Json::Int(l.p50_ns as i64)),
                        ("p99_ns", Json::Int(l.p99_ns as i64)),
                        ("mean_ns", Json::Int(l.mean_ns as i64)),
                        ("max_ns", Json::Int(l.max_ns as i64)),
                    ])
                })
                .collect(),
        );
        let counters = Json::Arr(
            self.counters
                .iter()
                .map(|(name, v)| {
                    Json::obj(vec![
                        ("name", Json::Str(name.clone())),
                        ("value", Json::Int(*v as i64)),
                    ])
                })
                .collect(),
        );
        if let Json::Obj(fields) = &mut doc {
            fields.push(("phases".to_owned(), phases));
            fields.push(("latencies".to_owned(), latencies));
            fields.push(("counters".to_owned(), counters));
        }
        let mut out = doc.to_json();
        out.push('\n');
        out
    }

    /// Parses a report back from its JSON form.
    ///
    /// # Errors
    ///
    /// A description of the parse or schema failure.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let doc = Json::parse(text).map_err(|e: JsonError| e.to_string())?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_i64)
            .ok_or("missing `schema`")?;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema version {schema} (expected {SCHEMA_VERSION})"
            ));
        }
        let need_u64 = |v: &Json, field: &'static str| -> Result<u64, String> {
            v.get(field)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing or non-integer `{field}`"))
        };
        let need_str = |v: &Json, field: &'static str| -> Result<String, String> {
            v.get(field)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing or non-string `{field}`"))
        };

        let mut report = BenchReport::new(&need_str(&doc, "scenario")?);
        report.virtual_ns = need_u64(&doc, "virtual_ns")?;
        for p in doc
            .get("phases")
            .and_then(Json::as_arr)
            .ok_or("missing `phases` array")?
        {
            report
                .phases
                .push((need_str(p, "name")?, need_u64(p, "ns")?));
        }
        for l in doc
            .get("latencies")
            .and_then(Json::as_arr)
            .ok_or("missing `latencies` array")?
        {
            report.latencies.push(LatencySummary {
                name: need_str(l, "name")?,
                samples: need_u64(l, "samples")?,
                p50_ns: need_u64(l, "p50_ns")?,
                p99_ns: need_u64(l, "p99_ns")?,
                mean_ns: need_u64(l, "mean_ns")?,
                max_ns: need_u64(l, "max_ns")?,
            });
        }
        for c in doc
            .get("counters")
            .and_then(Json::as_arr)
            .ok_or("missing `counters` array")?
        {
            report
                .counters
                .push((need_str(c, "name")?, need_u64(c, "value")?));
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::SimDuration;

    fn sample_report() -> BenchReport {
        let mut h = LatencyHistogram::new();
        for ms in [3u64, 5, 9] {
            h.record(SimDuration::from_millis(ms));
        }
        let mut r = BenchReport::new("cold_start");
        r.virtual_ns = 17_000_000;
        r.phase("checkpoint.copy_pages", 4_000_000);
        r.phase("restore.attach", 2_000_000);
        r.latency(LatencySummary::from_histogram("e2e", &h));
        r.counters
            .push(("cxl_mem.bytes_read{node=0}".to_owned(), 8192));
        r
    }

    #[test]
    fn roundtrip_is_lossless_and_byte_stable() {
        let r = sample_report();
        let text = r.to_json();
        let back = BenchReport::from_json(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json(), text, "serialization must be canonical");
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn validate_accepts_good_and_rejects_bad() {
        let r = sample_report();
        r.validate().unwrap();

        let mut no_e2e = r.clone();
        no_e2e.latencies.clear();
        assert!(no_e2e.validate().unwrap_err().contains("e2e"));

        let mut disordered = r.clone();
        disordered.latencies[0].p99_ns = 0;
        assert!(disordered.validate().unwrap_err().contains("not ordered"));

        let mut dup = r;
        dup.phase("checkpoint.copy_pages", 1);
        assert!(dup.validate().unwrap_err().contains("duplicate phase"));
    }

    #[test]
    fn from_json_rejects_wrong_schema_version() {
        let text = sample_report()
            .to_json()
            .replace("\"schema\":1", "\"schema\":99");
        assert!(BenchReport::from_json(&text)
            .unwrap_err()
            .contains("unsupported schema version"));
    }

    #[test]
    fn summary_matches_histogram() {
        let mut h = LatencyHistogram::new();
        for ms in 1..=100u64 {
            h.record(SimDuration::from_millis(ms));
        }
        let s = LatencySummary::from_histogram("e2e", &h);
        assert_eq!(s.samples, 100);
        assert_eq!(s.p50_ns, SimDuration::from_millis(50).as_nanos());
        assert_eq!(s.p99_ns, SimDuration::from_millis(99).as_nanos());
        assert_eq!(s.max_ns, SimDuration::from_millis(100).as_nanos());
    }
}
