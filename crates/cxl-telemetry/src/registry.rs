//! The process-wide metrics registry.
//!
//! Metrics are keyed by `(layer, name, node)` and render as
//! `layer.name{node=N}` — `layer` is the owning crate (`cxl_mem`,
//! `node_os`, `core`, `cxlporter`, `faas`, `bench`), `name` is a
//! dot-separated event name, and `node` is the fabric node id when the
//! metric is per-node. Three metric kinds exist:
//!
//! * **counters** — monotonically growing `u64` event/byte counts;
//! * **gauges** — last-write-wins `i64` levels (queue depths, utilization
//!   per mille);
//! * **timers** — [`LatencyHistogram`]s of virtual durations, for exact
//!   P50/P99 reporting.

use std::collections::BTreeMap;
use std::fmt;

use simclock::stats::LatencyHistogram;
use simclock::SimDuration;

/// A metric identity: `layer.name{node=N}`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Owning layer (crate) name, e.g. `cxl_mem`.
    pub layer: String,
    /// Event name within the layer, e.g. `bytes_read`.
    pub name: String,
    /// Fabric node id for per-node metrics, `None` for process-wide ones.
    pub node: Option<u32>,
}

impl MetricKey {
    /// Builds a key.
    pub fn new(layer: &str, name: &str, node: Option<u32>) -> Self {
        MetricKey {
            layer: layer.to_owned(),
            name: name.to_owned(),
            node,
        }
    }
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node {
            Some(n) => write!(f, "{}.{}{{node={}}}", self.layer, self.name, n),
            None => write!(f, "{}.{}", self.layer, self.name),
        }
    }
}

/// The registry of counters, gauges and timers.
///
/// # Example
///
/// ```
/// use cxl_telemetry::MetricsRegistry;
/// use simclock::SimDuration;
///
/// let mut r = MetricsRegistry::new();
/// r.counter_add("cxl_mem", "bytes_read", Some(0), 4096);
/// r.timer_record("faas", "invocation", Some(0), SimDuration::from_millis(14));
/// assert_eq!(r.counter("cxl_mem", "bytes_read", Some(0)), 4096);
/// assert_eq!(r.counter("cxl_mem", "bytes_read", Some(1)), 0);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, i64>,
    timers: BTreeMap<MetricKey, LatencyHistogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// `true` if nothing has ever been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.timers.is_empty()
    }

    /// Adds `n` to a counter.
    pub fn counter_add(&mut self, layer: &str, name: &str, node: Option<u32>, n: u64) {
        *self
            .counters
            .entry(MetricKey::new(layer, name, node))
            .or_insert(0) += n;
    }

    /// Reads a counter (zero if never written).
    pub fn counter(&self, layer: &str, name: &str, node: Option<u32>) -> u64 {
        self.counters
            .get(&MetricKey::new(layer, name, node))
            .copied()
            .unwrap_or(0)
    }

    /// Sets a gauge to `v`.
    pub fn gauge_set(&mut self, layer: &str, name: &str, node: Option<u32>, v: i64) {
        self.gauges.insert(MetricKey::new(layer, name, node), v);
    }

    /// Reads a gauge (`None` if never written).
    pub fn gauge(&self, layer: &str, name: &str, node: Option<u32>) -> Option<i64> {
        self.gauges.get(&MetricKey::new(layer, name, node)).copied()
    }

    /// Records one duration sample into a timer histogram.
    pub fn timer_record(&mut self, layer: &str, name: &str, node: Option<u32>, d: SimDuration) {
        self.timers
            .entry(MetricKey::new(layer, name, node))
            .or_default()
            .record(d);
    }

    /// The timer histogram for a key, if any samples were recorded.
    pub fn timer(&self, layer: &str, name: &str, node: Option<u32>) -> Option<&LatencyHistogram> {
        self.timers.get(&MetricKey::new(layer, name, node))
    }

    /// Iterates all counters in sorted key order.
    pub fn counters(&self) -> impl Iterator<Item = (&MetricKey, u64)> {
        self.counters.iter().map(|(k, v)| (k, *v))
    }

    /// Iterates all gauges in sorted key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&MetricKey, i64)> {
        self.gauges.iter().map(|(k, v)| (k, *v))
    }

    /// Iterates all timers in sorted key order.
    pub fn timers(&self) -> impl Iterator<Item = (&MetricKey, &LatencyHistogram)> {
        self.timers.iter()
    }

    /// Merges every metric from `other`: counters add, gauges
    /// last-write-win (`other` wins), timers merge samples. Used to fold
    /// per-run registries into cluster- or sweep-wide aggregates.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.timers {
            self.timers.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Sums one named timer across all nodes into a single histogram
    /// (e.g. cluster-wide `core.restore.latency`).
    pub fn timer_across_nodes(&self, layer: &str, name: &str) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        for (k, h) in &self.timers {
            if k.layer == layer && k.name == name {
                out.merge(h);
            }
        }
        out
    }

    /// Sums one named counter across all nodes.
    pub fn counter_across_nodes(&self, layer: &str, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.layer == layer && k.name == name)
            .map(|(_, v)| v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_render_with_naming_scheme() {
        assert_eq!(
            MetricKey::new("cxl_mem", "bytes_read", Some(3)).to_string(),
            "cxl_mem.bytes_read{node=3}"
        );
        assert_eq!(
            MetricKey::new("cxlporter", "checkpoints", None).to_string(),
            "cxlporter.checkpoints"
        );
    }

    #[test]
    fn counters_gauges_timers_are_independent_namespaces() {
        let mut r = MetricsRegistry::new();
        r.counter_add("a", "x", None, 2);
        r.counter_add("a", "x", None, 3);
        r.gauge_set("a", "x", None, -7);
        r.gauge_set("a", "x", None, 9);
        r.timer_record("a", "x", None, SimDuration::from_nanos(5));
        assert_eq!(r.counter("a", "x", None), 5);
        assert_eq!(r.gauge("a", "x", None), Some(9), "gauges last-write-win");
        assert_eq!(r.timer("a", "x", None).unwrap().len(), 1);
        assert_eq!(r.gauge("a", "y", None), None);
    }

    #[test]
    fn per_node_keys_do_not_collide() {
        let mut r = MetricsRegistry::new();
        r.counter_add("cxl_mem", "reads", Some(0), 1);
        r.counter_add("cxl_mem", "reads", Some(1), 10);
        r.counter_add("cxl_mem", "reads", None, 100);
        assert_eq!(r.counter("cxl_mem", "reads", Some(0)), 1);
        assert_eq!(r.counter("cxl_mem", "reads", Some(1)), 10);
        assert_eq!(r.counter("cxl_mem", "reads", None), 100);
        assert_eq!(r.counter_across_nodes("cxl_mem", "reads"), 111);
    }

    #[test]
    fn merge_folds_registries() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.counter_add("l", "c", None, 1);
        b.counter_add("l", "c", None, 2);
        a.timer_record("l", "t", Some(0), SimDuration::from_nanos(1));
        b.timer_record("l", "t", Some(1), SimDuration::from_nanos(3));
        a.merge(&b);
        assert_eq!(a.counter("l", "c", None), 3);
        assert_eq!(a.timer_across_nodes("l", "t").len(), 2);
    }
}
