//! TrEnv-CXL: a baseline modelled on TrEnv (SOSP '24), the system the
//! paper compares against in §9.
//!
//! TrEnv "relies, partially, on checkpointing, restoring, and sharing
//! function data over CXL … It is a CRIU-based solution optimized for
//! intra-node scaling that does not provide remote fork semantics.
//! Instead, it requires an expensive pre-processing step before remote
//! nodes can spawn functions … for each function on each remote node, it
//! requires de-serializing CRIU metadata in order to generate dedicated
//! local OS data structures (i.e., **memory templates**) that functions
//! will then attach and use to access the checkpointed data on CXL
//! memory" (§9).
//!
//! This reproduction implements exactly that architecture:
//!
//! * **Checkpoint**: function *data* pages are copied into a CXL region
//!   (shared cluster-wide, like CXLfork), but the OS metadata is
//!   serialized in CRIU image format — TrEnv is CRIU-based.
//! * **Restore**: a restore on node *N* needs a `(function, node)`
//!   **memory template** — node-local page-table leaves whose entries map
//!   the CXL data read-only. If the template does not exist yet, the
//!   restore first *pre-processes*: it deserializes the CRIU metadata
//!   (per-PTE decoding) and materializes the template, paying both the
//!   latency and the idle local memory the template occupies from then
//!   on. Subsequent restores on that node attach quickly.
//!
//! The contrast the paper draws — "CXLfork enables the rapid cloning of
//! functions on any remote node without requiring any pre-processing or
//! idling local data structures … CXLfork remote-forks functions 1.8×
//! faster than TrEnv on average [without pre-created templates]" — falls
//! out of this design: the first restore per node pays a Mitosis-scale
//! metadata deserialization, and every node holds template state for
//! every function it may run. TrEnv also has no tiering policies and no
//! cross-node OS-state sharing, so [`rfork::RestoreOptions`] are ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cxl_mem::lockdep::TrackedMutex;

use criu_cxl::images::{CoreImage, MmImage, PagemapEntry, PagemapImage};
use cxl_mem::{CxlPageId, NodeId, RegionId, PAGE_SIZE};
use node_os::addr::{PhysAddr, Pid, VirtPageNum};
use node_os::page_table::PtLeaf;
use node_os::pte::{Pte, PteFlags};
use node_os::vma::Vma;
use node_os::Node;
use rfork::{CheckpointMeta, RemoteFork, RestoreOptions, Restored, RforkError};
use simclock::SimDuration;

/// A pre-processed per-node memory template: local page-table leaves whose
/// entries map the checkpoint's CXL pages read-only.
#[derive(Debug)]
struct Template {
    /// `(leaf_index, leaf)` pairs, ready to clone into a new process.
    leaves: Vec<(u64, Arc<PtLeaf>)>,
    /// Idle local frames the template pins on its node (one per leaf, the
    /// backing of the template's page-table pages).
    pinned_frames: Vec<node_os::Pfn>,
}

/// The TrEnv-CXL mechanism.
#[derive(Debug)]
pub struct TrEnvCxl {
    next_id: AtomicU64,
    /// `(checkpoint id, node) → template`. Templates are per-function
    /// *and* per-node — the pre-processing TrEnv requires everywhere.
    /// A `BTreeMap` keeps any walk over the table deterministic (restore
    /// cost accounting feeds the bench reports).
    templates: TrackedMutex<BTreeMap<(u64, NodeId), Arc<Template>>>,
}

impl Default for TrEnvCxl {
    fn default() -> Self {
        TrEnvCxl {
            next_id: AtomicU64::new(0),
            templates: TrackedMutex::new("trenv.templates", BTreeMap::new()),
        }
    }
}

/// A TrEnv checkpoint: CXL-resident data pages plus CRIU-format metadata.
#[derive(Debug)]
pub struct TrEnvCheckpoint {
    meta: CheckpointMeta,
    id: u64,
    /// The device region holding the data pages.
    pub region: RegionId,
    core_bytes: Vec<u8>,
    mm_bytes: Vec<u8>,
    pagemap_bytes: Vec<u8>,
    /// vpn → CXL page, in pagemap order.
    pages: Vec<(u64, CxlPageId, bool)>,
    vmas: Vec<Vma>,
}

impl TrEnvCheckpoint {
    /// Size of the CRIU metadata a template build must deserialize.
    pub fn metadata_bytes(&self) -> u64 {
        (self.core_bytes.len() + self.mm_bytes.len() + self.pagemap_bytes.len()) as u64
    }
}

impl TrEnvCxl {
    /// Creates the mechanism.
    pub fn new() -> Self {
        TrEnvCxl::default()
    }

    /// Number of templates currently materialized across the cluster.
    pub fn template_count(&self) -> usize {
        self.templates.lock().len()
    }

    /// `true` if `node` already holds a template for this checkpoint.
    pub fn has_template(&self, checkpoint: &TrEnvCheckpoint, node: NodeId) -> bool {
        self.templates.lock().contains_key(&(checkpoint.id, node))
    }

    /// Pre-processes the template for `checkpoint` on `node` (TrEnv's
    /// expensive step): deserializes the CRIU metadata and materializes
    /// node-local page-table leaves mapping the CXL data. Idempotent.
    ///
    /// Returns the modelled cost (charged to the node's clock; zero if the
    /// template already existed).
    ///
    /// # Errors
    ///
    /// [`RforkError::Os`] if the node cannot pin the template's frames;
    /// [`RforkError::BadImage`] if the metadata is corrupt.
    pub fn build_template(
        &self,
        checkpoint: &TrEnvCheckpoint,
        node: &mut Node,
    ) -> Result<SimDuration, RforkError> {
        let key = (checkpoint.id, node.id());
        if self.templates.lock().contains_key(&key) {
            return Ok(SimDuration::ZERO);
        }
        let model = node.model().clone();

        // Deserialize the CRIU metadata (validates it, too).
        let _core = CoreImage::decode(&checkpoint.core_bytes)?;
        let _mm = MmImage::decode(&checkpoint.mm_bytes)?;
        let pagemap = PagemapImage::decode(&checkpoint.pagemap_bytes)?;

        // Materialize local leaves with read-only CXL mappings. The
        // BTreeMap comes out already sorted by leaf index.
        let mut leaves: BTreeMap<u64, PtLeaf> = BTreeMap::new();
        for (entry, (vpn, page, file_backed)) in pagemap.entries.iter().zip(&checkpoint.pages) {
            debug_assert_eq!(entry.vpn, *vpn);
            let v = VirtPageNum(*vpn);
            let mut flags = PteFlags::PRESENT | PteFlags::COW;
            if *file_backed {
                flags |= PteFlags::FILE;
            }
            if entry.dirty {
                flags |= PteFlags::DIRTY;
            }
            leaves
                .entry(v.leaf_index())
                .or_default()
                .set(v.leaf_slot(), Pte::mapped(PhysAddr::Cxl(*page), flags));
        }
        let leaves: Vec<(u64, Arc<PtLeaf>)> = leaves
            .into_iter()
            .map(|(idx, leaf)| (idx, Arc::new(leaf)))
            .collect();

        // The template's page-table pages idle in local memory from now on
        // (one frame per leaf).
        let mut pinned = Vec::with_capacity(leaves.len());
        for _ in 0..leaves.len() {
            match node.frames_mut().alloc_zeroed() {
                Ok(pfn) => pinned.push(pfn),
                Err(e) => {
                    for pfn in pinned {
                        node.frames_mut().dec_ref(pfn);
                    }
                    return Err(e.into());
                }
            }
        }

        let cost = model.deserialize(checkpoint.metadata_bytes())
            + SimDuration::from_nanos(model.descriptor_decode_pte_ns)
                * checkpoint.pages.len() as u64
            + model.local_copy(leaves.len() as u64 * PAGE_SIZE);
        node.clock_mut().advance(cost);
        node.counters_note("trenv_template_build");

        self.templates.lock().insert(
            key,
            Arc::new(Template {
                leaves,
                pinned_frames: pinned,
            }),
        );
        Ok(cost)
    }

    /// Drops every template for `checkpoint`, releasing the pinned frames
    /// on the corresponding nodes.
    pub fn drop_templates(&self, checkpoint: &TrEnvCheckpoint, nodes: &mut [Node]) {
        let mut templates = self.templates.lock();
        for node in nodes {
            if let Some(t) = templates.remove(&(checkpoint.id, node.id())) {
                // The mechanism holds the only Arc once removed.
                for pfn in &t.pinned_frames {
                    node.frames_mut().dec_ref(*pfn);
                }
            }
        }
    }
}

impl RemoteFork for TrEnvCxl {
    type Checkpoint = TrEnvCheckpoint;

    fn name(&self) -> &'static str {
        "TrEnv-CXL"
    }

    fn checkpoint(&self, node: &mut Node, pid: Pid) -> Result<TrEnvCheckpoint, RforkError> {
        let node_id = node.id();
        let model = node.model().clone();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);

        // ---- Capture state (CRIU-format metadata; data to CXL). ----
        let (core, mm_img, captured, footprint_pages) = {
            let process = node.process(pid)?;
            let core = CoreImage::capture(&process.task);
            let mm_img = MmImage {
                vmas: process.mm.vmas.iter().cloned().collect(),
            };
            let mut captured = Vec::new();
            let mut footprint_pages = 0u64;
            for (vpn, pte) in process.mm.page_table.iter_populated() {
                if !pte.is_present() {
                    continue;
                }
                footprint_pages += 1;
                let data = match pte.target().expect("present pte") {
                    PhysAddr::Local(pfn) => node.frames().data(pfn).clone(),
                    PhysAddr::Cxl(page) => node.device().read_page(page, node_id)?,
                };
                captured.push((
                    vpn.0,
                    pte.is_dirty(),
                    pte.flags().contains(PteFlags::FILE),
                    data,
                ));
            }
            (core, mm_img, captured, footprint_pages)
        };

        // ---- Data pages into a CXL region (shared, like CXLfork). ----
        let device = Arc::clone(node.device());
        let guard = device.create_region_guarded(&format!("trenv:{}#{id}", core.comm));
        let region = guard.id();
        let page_ids = node.device().alloc_pages(region, captured.len() as u64)?;
        let mut pages = Vec::with_capacity(captured.len());
        let mut pagemap = PagemapImage::default();
        for (i, ((vpn, dirty, file_backed, data), page)) in
            captured.into_iter().zip(&page_ids).enumerate()
        {
            node.device().write_page(*page, data, node_id)?;
            pages.push((vpn, *page, file_backed));
            pagemap.entries.push(PagemapEntry {
                vpn,
                dirty,
                page_index: i as u64,
            });
        }

        let core_bytes = core.encode()?;
        let mm_bytes = mm_img.encode()?;
        let pagemap_bytes = pagemap.encode();
        let meta_bytes = (core_bytes.len() + mm_bytes.len() + pagemap_bytes.len()) as u64;

        // Cost: stream data to CXL + serialize CRIU metadata.
        let payload = pages.len() as u64 * PAGE_SIZE;
        let cost = model.cxl_write_copy(payload) + model.serialize(meta_bytes);
        node.clock_mut().advance(cost);
        node.counters_note("trenv_checkpoint");

        let region = guard.commit();
        Ok(TrEnvCheckpoint {
            meta: CheckpointMeta {
                comm: core.comm.clone(),
                footprint_pages,
                cxl_pages: pages.len() as u64 + meta_bytes.div_ceil(PAGE_SIZE),
                created_at: node.now(),
                checkpoint_cost: cost,
                vma_count: mm_img.vmas.len(),
            },
            id,
            region,
            core_bytes,
            mm_bytes,
            pagemap_bytes,
            pages,
            vmas: mm_img.vmas,
        })
    }

    fn restore_with(
        &self,
        checkpoint: &TrEnvCheckpoint,
        node: &mut Node,
        _options: RestoreOptions,
    ) -> Result<Restored, RforkError> {
        let model = node.model().clone();

        // TrEnv cannot spawn without the node's template: build it on
        // demand (the pre-processing CXLfork avoids, §9).
        let template_cost = self.build_template(checkpoint, node)?;

        let core = CoreImage::decode(&checkpoint.core_bytes)?;
        let mut cost = template_cost
            + SimDuration::from_nanos(model.process_create_ns)
            + SimDuration::from_nanos(model.file_reopen_ns) * core.fds.len() as u64
            + SimDuration::from_nanos(model.fork_vma_copy_ns) * checkpoint.vmas.len() as u64;

        let pid = node.spawn(&core.comm)?;
        {
            let process = node.process_mut(pid)?;
            process.task.regs = core.regs;
            process.task.ns.pid_ns = core.pid_ns;
            process.task.ns.mount_ns = core.mount_ns;
            process.task.fds = core.restore_fds();
        }

        // Attach: clone the template's leaves into the new process (a
        // fast local copy; data stays in CXL, CoW on write).
        let template = {
            let templates = self.templates.lock();
            Arc::clone(
                templates
                    .get(&(checkpoint.id, node.id()))
                    .expect("template built above"),
            )
        };
        node.with_process_ctx(pid, |p, _| -> Result<(), RforkError> {
            for vma in &checkpoint.vmas {
                p.mm.vmas.insert(vma.clone()).map_err(RforkError::from)?;
            }
            for (leaf_index, leaf) in &template.leaves {
                p.mm.page_table
                    .install_local_leaf(*leaf_index, (**leaf).clone());
            }
            Ok(())
        })??;
        cost += model.local_copy(template.leaves.len() as u64 * PAGE_SIZE);

        node.clock_mut().advance(cost);
        node.counters_note("trenv_restore");
        Ok(Restored {
            pid,
            restore_latency: cost,
        })
    }

    fn meta<'c>(&self, checkpoint: &'c TrEnvCheckpoint) -> &'c CheckpointMeta {
        &checkpoint.meta
    }

    /// Like CXLfork-MoW, restored instances consume local memory only for
    /// what they write — plus the per-node template pinned alongside.
    fn restore_memory_estimate(
        &self,
        checkpoint: &TrEnvCheckpoint,
        _options: RestoreOptions,
    ) -> u64 {
        checkpoint.meta.footprint_pages / 8
    }

    /// Frees the CXL data region. Note: templates on other nodes keep
    /// their (now dangling) local structures until
    /// [`TrEnvCxl::drop_templates`] runs — the lifecycle coupling CXLfork
    /// avoids.
    fn release_checkpoint(
        &self,
        checkpoint: TrEnvCheckpoint,
        node: &Node,
    ) -> Result<u64, RforkError> {
        self.templates
            .lock()
            .retain(|(id, _), _| *id != checkpoint.id);
        Ok(node.device().destroy_region(checkpoint.region)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_mem::CxlDevice;
    use node_os::fs::SharedFs;
    use node_os::mm::{Access, FaultKind};
    use node_os::vma::Protection;
    use node_os::NodeConfig;

    fn cluster() -> (Node, Node) {
        let device = Arc::new(CxlDevice::with_capacity_mib(128));
        let rootfs = Arc::new(SharedFs::new());
        (
            Node::with_rootfs(
                NodeConfig::default().with_id(0).with_local_mem_mib(128),
                Arc::clone(&device),
                Arc::clone(&rootfs),
            ),
            Node::with_rootfs(
                NodeConfig::default().with_id(1).with_local_mem_mib(128),
                device,
                rootfs,
            ),
        )
    }

    /// A realistically sized process: 8192 pages (32 MiB) — template
    /// pre-processing costs only show at scale.
    const HEAP_PAGES: u64 = 8192;

    fn build_process(node: &mut Node) -> Pid {
        let pid = node.spawn("fn").unwrap();
        node.process_mut(pid)
            .unwrap()
            .mm
            .map_anonymous(0, HEAP_PAGES, Protection::read_write(), "heap")
            .unwrap();
        for i in 0..HEAP_PAGES {
            node.access(pid, i, Access::Write).unwrap();
        }
        pid
    }

    #[test]
    fn first_restore_builds_a_template_later_ones_reuse_it() {
        let (mut src, mut dst) = cluster();
        let pid = build_process(&mut src);
        let trenv = TrEnvCxl::new();
        let ckpt = trenv.checkpoint(&mut src, pid).unwrap();
        assert!(!trenv.has_template(&ckpt, dst.id()));

        let frames_before = dst.frames().used();
        let first = trenv.restore(&ckpt, &mut dst).unwrap();
        assert!(trenv.has_template(&ckpt, dst.id()));
        assert_eq!(trenv.template_count(), 1);
        // The template pins idle local frames.
        assert!(dst.frames().used() > frames_before);

        let second = trenv.restore(&ckpt, &mut dst).unwrap();
        assert!(
            second.restore_latency * 2 < first.restore_latency,
            "template reuse: first {} vs second {}",
            first.restore_latency,
            second.restore_latency
        );
        assert_eq!(trenv.template_count(), 1, "no duplicate template");
    }

    #[test]
    fn templates_are_per_node() {
        let (mut src, mut dst) = cluster();
        let pid = build_process(&mut src);
        let trenv = TrEnvCxl::new();
        let ckpt = trenv.checkpoint(&mut src, pid).unwrap();
        trenv.restore(&ckpt, &mut dst).unwrap();
        // The source node has no template until it restores too.
        assert!(!trenv.has_template(&ckpt, src.id()));
        trenv.restore(&ckpt, &mut src).unwrap();
        assert_eq!(trenv.template_count(), 2);
    }

    #[test]
    fn restored_instance_shares_cxl_data_and_cows_on_write() {
        let (mut src, mut dst) = cluster();
        let pid = build_process(&mut src);
        let trenv = TrEnvCxl::new();
        let ckpt = trenv.checkpoint(&mut src, pid).unwrap();
        let r = trenv.restore(&ckpt, &mut dst).unwrap();
        let read = dst.access(r.pid, 3, Access::Read).unwrap();
        assert_eq!(read.fault, None, "data mapped read-only from CXL");
        assert!(read.cxl_tier);
        let write = dst.access(r.pid, 3, Access::Write).unwrap();
        assert_eq!(write.fault, Some(FaultKind::CxlCow));
    }

    #[test]
    fn cxlfork_is_faster_without_preexisting_templates() {
        // The §9 comparison: on a fresh node, CXLfork's attach beats
        // TrEnv's template pre-processing (paper: 1.8x on average).
        let (mut src, mut dst) = cluster();
        let pid = build_process(&mut src);
        let trenv = TrEnvCxl::new();
        let tc = trenv.checkpoint(&mut src, pid).unwrap();
        let t = trenv.restore(&tc, &mut dst).unwrap();

        let (mut src2, mut dst2) = cluster();
        let pid2 = build_process(&mut src2);
        let fork = cxlfork_for_test();
        let fc = fork.checkpoint(&mut src2, pid2).unwrap();
        let f = fork
            .restore_with(
                &fc,
                &mut dst2,
                RestoreOptions {
                    policy: rfork::TierPolicy::MigrateOnWrite,
                    prefetch_dirty: false,
                    sync_hot_prefetch: false,
                },
            )
            .unwrap();
        assert!(
            f.restore_latency.mul_f64(1.3) < t.restore_latency,
            "CXLfork {} vs TrEnv-no-template {}",
            f.restore_latency,
            t.restore_latency
        );
    }

    fn cxlfork_for_test() -> cxlfork::CxlFork {
        cxlfork::CxlFork::new()
    }

    #[test]
    fn drop_templates_releases_pinned_frames() {
        let (mut src, mut dst) = cluster();
        let pid = build_process(&mut src);
        let trenv = TrEnvCxl::new();
        let ckpt = trenv.checkpoint(&mut src, pid).unwrap();
        let before = dst.frames().used();
        let r = trenv.restore(&ckpt, &mut dst).unwrap();
        dst.kill(r.pid).unwrap();
        assert!(dst.frames().used() > before, "template still pinned");
        let mut nodes = [src, dst];
        trenv.drop_templates(&ckpt, &mut nodes);
        assert_eq!(nodes[1].frames().used(), before);
        assert_eq!(trenv.template_count(), 0);
    }

    #[test]
    fn corrupt_metadata_fails_template_build() {
        let (mut src, mut dst) = cluster();
        let pid = build_process(&mut src);
        let trenv = TrEnvCxl::new();
        let mut ckpt = trenv.checkpoint(&mut src, pid).unwrap();
        ckpt.pagemap_bytes.truncate(6);
        assert!(matches!(
            trenv.restore(&ckpt, &mut dst),
            Err(RforkError::BadImage(_))
        ));
        assert_eq!(trenv.template_count(), 0);
    }
}
