//! Drive CXLporter — the horizontal FaaS autoscaler — with an Azure-like
//! bursty trace and compare remote-fork mechanisms end to end.
//!
//! ```sh
//! cargo run --release --example serverless_autoscaler
//! ```

use std::sync::Arc;

use cxlporter::{Cluster, CxlPorter, PorterConfig, PorterReport};
use rfork::RemoteFork;
use simclock::LatencyModel;
use trace_gen::{generate, TraceConfig};

/// Steady-state measurement starts after a warm-up window; keep-alive is
/// shorter than the burst gap so bursts exercise the cold path.
fn tune(mut config: PorterConfig) -> PorterConfig {
    config.keep_alive = simclock::SimDuration::from_secs(5);
    config
}

fn demo_trace() -> Vec<trace_gen::Invocation> {
    generate(&TraceConfig {
        duration_secs: 30.0,
        total_rps: 80.0,
        ..TraceConfig::paper_default(
            vec![
                "Json".into(),
                "Float".into(),
                "Pyaes".into(),
                "Chameleon".into(),
                "HTML".into(),
            ],
            7,
        )
    })
}

fn run<M: RemoteFork>(name: &str, mech: M, config: PorterConfig) -> PorterReport {
    let cluster = Cluster::new(2, 4096, 16 * 1024, LatencyModel::calibrated());
    let mut porter = CxlPorter::new(cluster, mech, tune(config));
    porter.set_measure_from(simclock::SimTime::from_nanos(8_000_000_000));
    let trace = demo_trace();
    println!("[{name}] serving {} requests ...", trace.len());
    porter.run_trace(&trace)
}

fn main() {
    let mut results = Vec::new();

    // CRIU-CXL: the state of practice (no ghost containers).
    {
        let cluster = Cluster::new(2, 4096, 16 * 1024, LatencyModel::calibrated());
        let criu =
            criu_cxl::CriuCxl::new(Arc::new(cxl_mem::CxlFs::new(Arc::clone(&cluster.device))));
        let mut porter = CxlPorter::new(cluster, criu, tune(PorterConfig::criu()));
        porter.set_measure_from(simclock::SimTime::from_nanos(8_000_000_000));
        let trace = demo_trace();
        println!("[CRIU-CXL] serving {} requests ...", trace.len());
        results.push(("CRIU-CXL", porter.run_trace(&trace)));
    }
    results.push((
        "Mitosis-CXL",
        run(
            "Mitosis-CXL",
            mitosis_cxl::MitosisCxl::new(),
            PorterConfig::mitosis(),
        ),
    ));
    results.push((
        "CXLfork",
        run(
            "CXLfork",
            cxlfork::CxlFork::new(),
            PorterConfig::cxlfork_dynamic(),
        ),
    ));

    println!(
        "\n{:<12} {:>9} {:>9} {:>11} {:>6} {:>9} {:>6} {:>9}",
        "mechanism", "P50", "P99", "worst", "warm", "restores", "cold", "peak-MiB"
    );
    for (name, mut r) in results {
        // The worst request in the steady-state window is a cold restore:
        // this is where the mechanisms differ most.
        let worst = r.overall.max().as_millis_f64();
        println!(
            "{:<12} {:>8.1}ms {:>8.1}ms {:>9.1}ms {:>6} {:>9} {:>6} {:>9.0}",
            name,
            r.overall.p50().as_millis_f64(),
            r.overall.p99().as_millis_f64(),
            worst,
            r.warm_hits,
            r.restores,
            r.full_cold,
            r.peak_local_pages.iter().max().copied().unwrap_or(0) as f64 / 256.0,
        );
    }
    println!(
        "\nCXLfork keeps tail latency near warm latency (ghost containers + attach-based restore)"
    );
    println!(
        "while consuming a fraction of the baselines' local memory (CXL-resident shared state)."
    );
}
