//! Profile a function's footprint composition (the Fig. 1 methodology):
//! deploy it, run N invocations while harvesting A/D bits per invocation,
//! and classify every page as Init / Read-only / Read-write.
//!
//! ```sh
//! cargo run --release -p cxlfork-bench --example footprint_profiler -- Bert 16
//! ```

use std::sync::Arc;

use cxl_mem::CxlDevice;
use node_os::{Node, NodeConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "Json".to_owned());
    let invocations: u64 = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16)
        .max(1);

    let Some(spec) = faas::by_name(&name) else {
        eprintln!(
            "unknown function {name}; choose one of: {}",
            faas::suite()
                .iter()
                .map(|s| s.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    };

    let device = Arc::new(CxlDevice::with_capacity_mib(64));
    let mut node = Node::new(NodeConfig::default().with_local_mem_mib(4096), device);
    println!("deploying {} ({} MiB) ...", spec.name, spec.footprint_mib);
    let (pid, init) = faas::deploy_cold(&mut node, &spec).expect("node holds the footprint");
    println!(
        "state initialization: {} ({} pages touched)",
        init.total, init.pages_touched
    );

    println!("profiling over {invocations} invocations ...");
    let b = faas::profile_footprint(&mut node, pid, &spec, invocations).expect("profile");
    let (i, r, w) = b.fractions();
    println!();
    println!(
        "footprint composition of {} ({} pages):",
        spec.name,
        b.total()
    );
    println!("  Init       {:>6.1}%  ({} pages)", i * 100.0, b.init_pages);
    println!(
        "  Read-only  {:>6.1}%  ({} pages)",
        r * 100.0,
        b.readonly_pages
    );
    println!(
        "  Read/Write {:>6.1}%  ({} pages)",
        w * 100.0,
        b.readwrite_pages
    );
    println!();
    println!(
        "paper (Fig. 1) averages across the suite: Init 72.2%, Read-only 23%, Read/Write 4.8%"
    );
    println!("the Init + Read-only shares are what CXLfork leaves deduplicated in CXL memory.");
}
