//! Quickstart: checkpoint a process on one node, restore it — zero-copy —
//! on another node over the shared CXL device.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::error::Error;
use std::sync::Arc;

use cxl_mem::CxlDevice;
use cxlfork::CxlFork;
use node_os::fs::SharedFs;
use node_os::mm::Access;
use node_os::vma::Protection;
use node_os::{Node, NodeConfig};
use rfork::RemoteFork;

fn main() -> Result<(), Box<dyn Error>> {
    // A two-node cluster sharing a CXL memory device and a root fs.
    let device = Arc::new(CxlDevice::with_capacity_mib(256));
    let rootfs = Arc::new(SharedFs::new());
    let mut node0 = Node::with_rootfs(
        NodeConfig::default().with_id(0),
        Arc::clone(&device),
        Arc::clone(&rootfs),
    );
    let mut node1 = Node::with_rootfs(
        NodeConfig::default().with_id(1),
        Arc::clone(&device),
        rootfs,
    );

    // A process on node 0 with 4 MiB of initialized heap, of which only a
    // 32-page set is actively re-written (a typical FaaS shape, §2.2).
    let pid = node0.spawn("worker")?;
    node0
        .process_mut(pid)?
        .mm
        .map_anonymous(0, 1024, Protection::read_write(), "heap")?;
    for vpn in 0..1024 {
        node0.access(pid, vpn, Access::Write)?;
    }
    // Clear the A/D record of initialization, then touch the steady-state
    // working set (what CXLporter does before checkpointing, §5).
    node0.with_process_ctx(pid, |p, _| p.mm.page_table.clear_ad_bits())?;
    for vpn in 0..32 {
        node0.access(pid, vpn, Access::Write)?;
    }
    println!(
        "parent on {}: {} pages resident, clock {}",
        node0.id(),
        node0.process(pid)?.mm.mapped_local_pages(),
        node0.now()
    );

    // Checkpoint: copy + rebase everything into CXL memory.
    let cxlfork = CxlFork::new();
    let ckpt = cxlfork.checkpoint(&mut node0, pid)?;
    println!(
        "checkpoint: {} data pages, {} CXL pages total, took {}",
        ckpt.data_pages,
        ckpt.meta().cxl_pages,
        ckpt.meta().checkpoint_cost
    );

    // Restore on node 1: attach, don't copy.
    let frames_before = node1.frames().used();
    let restored = cxlfork.restore(&ckpt, &mut node1)?;
    println!(
        "restored on {} in {} — local frames added: {}",
        node1.id(),
        restored.restore_latency,
        node1.frames().used() - frames_before
    );

    // The child reads the parent's bytes straight from CXL ...
    let read = node1.access(restored.pid, 10, Access::Read)?;
    println!(
        "child read of page 10: fault={:?}, served from {}",
        read.fault,
        if read.cxl_tier { "CXL" } else { "local DRAM" }
    );

    // ... and a write migrates the page to local memory (CoW), leaving
    // the checkpoint pristine for further clones.
    let write = node1.access(restored.pid, 10, Access::Write)?;
    println!(
        "child write of page 10: fault={:?} costing {}",
        write.fault, write.fault_cost
    );
    let again = cxlfork.restore(&ckpt, &mut node1)?;
    println!(
        "second clone restored in {} (checkpoint is reusable)",
        again.restore_latency
    );
    Ok(())
}
