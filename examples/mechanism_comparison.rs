//! Compare the three remote-fork mechanisms — CRIU-CXL, Mitosis-CXL and
//! CXLfork — on the same function, end to end: checkpoint cost, restore
//! latency, cold-start execution and the child's local-memory footprint.
//!
//! ```sh
//! cargo run --release --example mechanism_comparison [function]
//! ```

use cxlfork_bench::{run_cold_start, Scenario, DEFAULT_STEADY_INVOCATIONS};
use simclock::LatencyModel;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Rnn".to_owned());
    let Some(spec) = faas::by_name(&name) else {
        eprintln!(
            "unknown function {name}; choose one of: {}",
            faas::suite()
                .iter()
                .map(|s| s.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    };
    println!(
        "function {} — {} MiB footprint, {}-page working set\n",
        spec.name, spec.footprint_mib, spec.ws_pages
    );

    let model = LatencyModel::calibrated();
    println!(
        "{:<12} {:>12} {:>11} {:>11} {:>11} {:>10} {:>8}",
        "scenario", "checkpoint", "restore", "faults", "total", "local-MiB", "#faults"
    );
    for scenario in [
        Scenario::Cold,
        Scenario::LocalFork,
        Scenario::Criu,
        Scenario::Mitosis,
        Scenario::cxlfork_default(),
    ] {
        let r = run_cold_start(&spec, scenario, &model, DEFAULT_STEADY_INVOCATIONS);
        println!(
            "{:<12} {:>10.1}ms {:>9.2}ms {:>9.2}ms {:>9.1}ms {:>10.1} {:>8}",
            r.scenario,
            r.checkpoint_cost.as_millis_f64(),
            r.restore.as_millis_f64(),
            r.faults.as_millis_f64(),
            r.total.as_millis_f64(),
            r.local_pages as f64 / 256.0,
            r.fault_count,
        );
    }
    println!("\nCXLfork: near-local-fork latency, a fraction of the memory — the checkpoint");
    println!("stays in CXL and is shared by every clone on every node.");
}
