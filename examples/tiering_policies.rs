//! Explore CXLfork's tiering policies (§4.3) on a cache-thrashing
//! workload: migrate-on-write vs migrate-on-access vs A-bit-guided hybrid
//! tiering, plus the working-set monitoring and user hot-hint interfaces.
//!
//! ```sh
//! cargo run --release --example tiering_policies
//! ```

use std::error::Error;
use std::sync::Arc;

use cxl_mem::CxlDevice;
use cxlfork::CxlFork;
use node_os::addr::VirtPageNum;
use node_os::fs::SharedFs;
use node_os::{Node, NodeConfig};
use rfork::{RemoteFork, RestoreOptions};

fn cluster() -> (Node, Node) {
    let device = Arc::new(CxlDevice::with_capacity_mib(2048));
    let rootfs = Arc::new(SharedFs::new());
    (
        Node::with_rootfs(
            NodeConfig::default().with_id(0).with_local_mem_mib(2048),
            Arc::clone(&device),
            Arc::clone(&rootfs),
        ),
        Node::with_rootfs(
            NodeConfig::default().with_id(1).with_local_mem_mib(2048),
            device,
            rootfs,
        ),
    )
}

fn main() -> Result<(), Box<dyn Error>> {
    // BFS sweeps a working set larger than the 64 MB LLC — the workload
    // where tiering matters most (Fig. 8).
    let spec = faas::by_name("BFS").expect("BFS in suite");
    println!(
        "function: {} ({} MiB, working set {} pages x{} passes)\n",
        spec.name, spec.footprint_mib, spec.ws_pages, spec.ws_passes
    );

    for options in [
        RestoreOptions::mow(),
        RestoreOptions::moa(),
        RestoreOptions::hybrid(),
    ] {
        let (mut src, mut dst) = cluster();
        let (pid, _) = faas::deploy_cold(&mut src, &spec)?;
        faas::warm_for_checkpoint(&mut src, pid, &spec, 15)?;
        let fork = CxlFork::new();
        let ckpt = fork.checkpoint(&mut src, pid)?;

        let frames_before = dst.frames().used();
        let restored = fork.restore_with(&ckpt, &mut dst, options)?;
        let cold = faas::run_invocation(&mut dst, restored.pid, &spec, 0)?;
        for i in 1..3 {
            faas::run_invocation(&mut dst, restored.pid, &spec, i)?;
        }
        let warm = faas::run_invocation(&mut dst, restored.pid, &spec, 3)?;
        println!(
            "{:<4}  restore {:>9}  cold {:>10}  warm {:>10}  local {:>6.1} MiB",
            options.policy.to_string(),
            restored.restore_latency.to_string(),
            (restored.restore_latency + cold.total).to_string(),
            warm.total.to_string(),
            (dst.frames().used() - frames_before) as f64 / 256.0,
        );
    }

    // Working-set monitoring: restored walkers update the checkpointed A
    // bits, and user space can reset them to re-estimate hot pages (§4.3).
    let (mut src, mut dst) = cluster();
    let (pid, _) = faas::deploy_cold(&mut src, &spec)?;
    faas::warm_for_checkpoint(&mut src, pid, &spec, 15)?;
    let fork = CxlFork::new();
    let ckpt = fork.checkpoint(&mut src, pid)?;
    ckpt.reset_access_bits();
    let restored = fork.restore_with(&ckpt, &mut dst, RestoreOptions::mow())?;
    faas::run_invocation(&mut dst, restored.pid, &spec, 0)?;
    let ws = ckpt.working_set();
    println!(
        "\nworking-set monitor: {} of {} checkpointed pages hot ({:.0}%) after one invocation",
        ws.hot_pages,
        ws.total_pages,
        ws.hot_fraction() * 100.0
    );

    // User hot hints: pin a page hot for future hybrid restores.
    let hinted = VirtPageNum(0x0020_0000);
    assert!(ckpt.mark_hot(hinted));
    println!(
        "user hint: {hinted} pinned hot ({} hints total)",
        ckpt.hot_hint_count()
    );
    Ok(())
}
