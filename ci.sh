#!/usr/bin/env sh
# Repository CI gate. Everything here must pass before a change lands.
#
# Runs the suite twice: once as shipped (checkers compiled out, zero
# cost) and once with --features check, which arms the cross-layer
# invariant auditor, checkpoint seal verification and lockdep edge
# recording throughout the workspace (see DESIGN.md §7).
set -eu

cd "$(dirname "$0")"

echo '== fmt =='
cargo fmt --all --check

echo '== clippy (default features) =='
cargo clippy --workspace --all-targets -- -D warnings

echo '== clippy (--features check) =='
cargo clippy --workspace --all-targets --features check -- -D warnings

echo '== cxl-lint static analysis gate (both feature states) =='
# Dependency-free static analysis (DESIGN.md §12): virtual-time-only
# discipline, lock discipline (raw locks banned outside lockdep; the
# statically extracted lock-class graph must be a DAG), and fault-hook
# robustness (no unwrap/expect on the device path). Runs before the test
# suites so a violation fails fast; the --json pass pins the
# machine-readable schema end to end. Built in both feature states to
# prove the lint itself carries no checker-gated code.
cargo run --quiet -p cxl-lint
cargo run --quiet -p cxl-lint -- --json > /dev/null
cargo run --quiet -p cxl-lint --features check -- --json > /dev/null

echo '== test (default features) =='
cargo test --workspace --quiet

echo '== test (--features check) =='
cargo test --workspace --quiet --features check

echo '== sharded-device audits + lockdep lint (both feature states) =='
# Drives batched traffic across the sharded page pool, reconciles the
# per-shard counters against the live slab, and lints the observed lock
# order (regions -> shardNN, ascending) for cycles. The default-feature
# pass proves the audits hold with lockdep compiled out; the check pass
# proves the recorded edge graph is a DAG (DESIGN.md §10).
cargo test --quiet -p cxl-check --test sharded_device_lint
cargo test --quiet -p cxl-check --features check --test sharded_device_lint

echo '== fault injection sweep (--features check, 3 seeds) =='
for seed in 7 1984 4242; do
    echo "-- CXLFAULT_SEED=$seed"
    CXLFAULT_SEED=$seed cargo test --quiet -p cxlfork-bench --features check --test fault_recovery
    CXLFAULT_SEED=$seed cargo test --quiet -p cxlfork-bench --features check --test capacity_pressure
done

echo '== crashpoint sweep smoke (bounded, both feature states) =='
# A bounded slice of the exhaustive crash-recovery sweep
# (tests/crashpoint_sweep.rs, DESIGN.md §13): kill the coordinator at
# the first 6 injection positions for 2 seeds, recover the store from
# the surviving device, and hold every recovery to zero audit
# violations and byte-identical surviving contents. The full sweep
# (every position, 3 seeds) already ran with the workspace suites
# above; this pass pins the env-bounded smoke contract itself.
CRASH_SWEEP_POSITIONS=6 CRASH_SWEEP_SEEDS=2 \
    cargo test --quiet -p cxlfork-bench --test crashpoint_sweep
CRASH_SWEEP_POSITIONS=6 CRASH_SWEEP_SEEDS=2 \
    cargo test --quiet -p cxlfork-bench --features check --test crashpoint_sweep

echo '== cluster-engine smoke (bounded, both feature states) =='
# A smoke-scale slice of the cluster determinism suite
# (tests/cluster_sim.rs): two runs of the same seeded diurnal trace
# over CLUSTER_SMOKE_NODES nodes must produce bit-identical
# PorterReports on the cxl-sim discrete-event engine, fairness and
# crash accounting included. The full 64-node, >=100k-invocation replay
# is exercised by the BENCH_cluster.json drift gate below.
CLUSTER_SMOKE_NODES=8 cargo test --quiet -p cxlfork-bench --test cluster_sim
CLUSTER_SMOKE_NODES=8 cargo test --quiet -p cxlfork-bench --features check --test cluster_sim

echo '== pipeline model property tests (both feature states) =='
# The overlapped per-shard transfer model (DESIGN.md §15): p = 1 is
# bit-identical to the serial cost, cost is monotone non-increasing in
# p, and the critical path never beats the streaming-bandwidth floor
# that keeps the paper's mechanism ordering intact. Already covered by
# the workspace suites above; this pass pins the invariants by name so
# a filtered-out rename fails loudly.
cargo test --quiet -p simclock pipeline_
cargo test --quiet -p simclock --features check pipeline_

echo '== fabric queueing + contention properties (both feature states) =='
# The fabric model (DESIGN.md §16): queueing delay is exactly zero at
# zero load (attaching an idle fabric reproduces the flat 391 ns model
# byte for byte), monotone in in-flight bytes and background load, and
# telemetry-invariant; end to end, contention erodes the pipelined
# copy's win and striping beats locality once traffic overlaps. The
# BENCH_contention.json drift gate below pins the full surface; these
# named passes pin the invariants so a filtered-out rename fails loudly.
cargo test --quiet -p simclock queueing_
cargo test --quiet -p simclock --features check queueing_
cargo test --quiet -p cxl-fabric
cargo test --quiet -p cxl-fabric --features check
cargo test --quiet -p cxlfork-bench --test contention
cargo test --quiet -p cxlfork-bench --features check --test contention

echo '== release build =='
cargo build --workspace --release --quiet

echo '== benchmark report drift gate (telemetry armed, both feature states) =='
# Regenerates every BENCH_<scenario>.json with telemetry armed,
# round-trips each through the parser, and fails if any byte differs
# from the committed file: perf changes must be committed explicitly.
# The --features check pass proves the audits themselves never move a
# virtual-time result (armed-vs-unarmed bit-identity).
cargo run --release --quiet -p cxlfork-bench --bin bench_report -- --check
cargo run --release --quiet -p cxlfork-bench --features check --bin bench_report -- --check

echo 'CI green.'
