//! Whole-system determinism: a simulator is only trustworthy if identical
//! inputs produce bit-identical outputs. These tests replay full
//! autoscaler traces and fork pipelines twice and require exact equality
//! of every reported number.

use std::sync::Arc;

use cxlporter::{Cluster, CxlPorter, PorterConfig};
use rfork::RemoteFork;
use simclock::LatencyModel;
use trace_gen::{generate, TraceConfig};

/// Post-condition under `--features check`: node ledgers, device books
/// and the lock-order graph are consistent after a pipeline run.
fn audit_clean(nodes: &[&node_os::Node], device: &cxl_mem::CxlDevice) {
    #[cfg(feature = "check")]
    {
        let mut violations = Vec::new();
        for node in nodes {
            violations.extend(cxl_check::audit_node(node));
        }
        violations.extend(cxl_check::audit_device(device));
        violations.extend(cxl_check::check_lock_order());
        assert!(
            violations.is_empty(),
            "cross-layer audit failed: {violations:?}"
        );
    }
    #[cfg(not(feature = "check"))]
    let _ = (nodes, device);
}

fn trace(seed: u64) -> Vec<trace_gen::Invocation> {
    generate(&TraceConfig {
        duration_secs: 8.0,
        total_rps: 35.0,
        ..TraceConfig::paper_default(vec!["Json".into(), "Float".into(), "Linpack".into()], seed)
    })
}

#[test]
fn porter_runs_are_bit_identical() {
    let run = || {
        let cluster = Cluster::new(2, 2048, 8192, LatencyModel::calibrated());
        let mut porter = CxlPorter::new(
            cluster,
            cxlfork::CxlFork::new(),
            PorterConfig {
                checkpoint_after: 4,
                ..PorterConfig::cxlfork_dynamic()
            },
        );
        let mut report = porter.run_trace(&trace(99));
        (
            report.overall.p50(),
            report.overall.p99(),
            report.overall.mean(),
            report.warm_hits,
            report.restores,
            report.full_cold,
            report.recycles,
            report.dropped,
            report.checkpoints,
            report.peak_local_pages.clone(),
            report.final_cxl_pages,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn fork_pipelines_are_bit_identical() {
    let run = || {
        let device = Arc::new(cxl_mem::CxlDevice::with_capacity_mib(2048));
        let rootfs = Arc::new(node_os::fs::SharedFs::new());
        let mut src = node_os::Node::with_rootfs(
            node_os::NodeConfig::default()
                .with_id(0)
                .with_local_mem_mib(1024),
            Arc::clone(&device),
            Arc::clone(&rootfs),
        );
        let mut dst = node_os::Node::with_rootfs(
            node_os::NodeConfig::default()
                .with_id(1)
                .with_local_mem_mib(1024),
            Arc::clone(&device),
            rootfs,
        );
        let spec = faas::by_name("Linpack").unwrap();
        let (pid, init) = faas::deploy_cold(&mut src, &spec).unwrap();
        faas::warm_for_checkpoint(&mut src, pid, &spec, 8).unwrap();
        let fork = cxlfork::CxlFork::new();
        let ckpt = fork.checkpoint(&mut src, pid).unwrap();
        let restored = fork.restore(&ckpt, &mut dst).unwrap();
        let inv = faas::run_invocation(&mut dst, restored.pid, &spec, 0).unwrap();
        audit_clean(&[&src, &dst], &device);
        (
            init.total,
            fork.meta(&ckpt).checkpoint_cost,
            fork.meta(&ckpt).cxl_pages,
            ckpt.dirty_pages,
            ckpt.accessed_pages,
            restored.restore_latency,
            inv.total,
            inv.faults,
            dst.frames().used(),
            device.used_pages(),
            src.now(),
            dst.now(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn mechanisms_see_identical_source_state() {
    // Checkpointing the same process twice with the same mechanism gives
    // checkpoints with identical metadata (content equality is covered by
    // per-mechanism tests).
    let device = Arc::new(cxl_mem::CxlDevice::with_capacity_mib(2048));
    let rootfs = Arc::new(node_os::fs::SharedFs::new());
    let mut src = node_os::Node::with_rootfs(
        node_os::NodeConfig::default()
            .with_id(0)
            .with_local_mem_mib(1024),
        Arc::clone(&device),
        rootfs,
    );
    let spec = faas::by_name("Pyaes").unwrap();
    let (pid, _) = faas::deploy_cold(&mut src, &spec).unwrap();
    faas::warm_for_checkpoint(&mut src, pid, &spec, 4).unwrap();
    let fork = cxlfork::CxlFork::new();
    let a = fork.checkpoint(&mut src, pid).unwrap();
    let b = fork.checkpoint(&mut src, pid).unwrap();
    assert_eq!(a.meta().footprint_pages, b.meta().footprint_pages);
    assert_eq!(a.data_pages, b.data_pages);
    assert_eq!(a.dirty_pages, b.dirty_pages);
    assert_eq!(a.accessed_pages, b.accessed_pages);
    assert_eq!(a.leaves.len(), b.leaves.len());
    assert_eq!(a.vma_blocks.len(), b.vma_blocks.len());
    audit_clean(&[&src], &device);
}
