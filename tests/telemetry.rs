//! Telemetry integration, end to end.
//!
//! Three properties matter and each gets its own test:
//!
//! 1. **Zero perturbation** — arming telemetry must not move a single
//!    virtual-time result: an armed seeded availability run produces a
//!    bit-identical [`cxlporter::PorterReport`] to an unarmed one.
//! 2. **Reconciliation** — the `cxl_mem.*` telemetry counters are
//!    mirrors of [`cxl_mem::CxlDeviceStats`]; after a full
//!    checkpoint/restore/invoke cycle the two books must agree entry
//!    for entry (and, under `--features check`, the cross-layer audits
//!    of the same run must stay clean).
//! 3. **Trace consistency** — checkpoint/restore phase child spans
//!    partition their parent span exactly, the `core.phase.*` counters
//!    equal the corresponding span durations, and the Chrome export
//!    parses back with one `X` event per span.
//!
//! The telemetry sink is process-global, so every test serializes on
//! [`TELEMETRY_LOCK`].

use std::sync::{Arc, Mutex};

use cxl_mem::CxlDevice;
use cxl_telemetry::{chrome_trace, Json, TelemetryData, TelemetrySession};
use cxlfork::CxlFork;
use cxlfork_bench::report::cold_start_report;
use cxlfork_bench::{run_availability, run_cold_start, Scenario, DEFAULT_STEADY_INVOCATIONS};
use node_os::fs::SharedFs;
use node_os::{Node, NodeConfig};
use rfork::{RemoteFork, RestoreOptions};
use simclock::LatencyModel;

static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn armed_availability_run_is_bit_identical_to_unarmed() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    let model = LatencyModel::calibrated();
    let unarmed = run_availability(7, 2, &model);

    let session = TelemetrySession::start();
    let armed = run_availability(7, 2, &model);
    let data = session.finish();

    assert_eq!(
        unarmed.report, armed.report,
        "arming telemetry moved a virtual-time result"
    );
    assert_eq!(unarmed.fault_stats, armed.fault_stats);
    assert_eq!(unarmed.trace_len, armed.trace_len);

    // ... and the armed run actually observed the workload.
    assert!(!data.registry.is_empty());
    assert!(!data.spans.is_empty());
    let e2e = data.registry.timer_across_nodes("cxlporter", "e2e");
    assert!(!e2e.is_empty(), "porter recorded no end-to-end samples");
    assert_eq!(
        data.registry
            .counter_across_nodes("cxlporter", "crashes_survived"),
        armed.report.crashes_survived
    );
}

#[test]
fn telemetry_counters_reconcile_with_device_stats() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    let model = LatencyModel::calibrated();

    // The device is created *inside* the armed window, so its stats and
    // the telemetry counters cover exactly the same operations.
    let session = TelemetrySession::start();
    let device = Arc::new(CxlDevice::with_capacity_mib(4096));
    let rootfs = Arc::new(SharedFs::new());
    let mut nodes: Vec<Node> = (0..2)
        .map(|i| {
            Node::with_rootfs(
                NodeConfig::default()
                    .with_id(i)
                    .with_local_mem_mib(2048)
                    .with_model(model.clone()),
                Arc::clone(&device),
                Arc::clone(&rootfs),
            )
        })
        .collect();
    let mut node1 = nodes.pop().expect("two nodes");
    let mut node0 = nodes.pop().expect("two nodes");

    let spec = faas::by_name("Json").expect("Json is in the suite");
    let (parent, _) = faas::deploy_cold(&mut node0, &spec).expect("deploy fits");
    faas::warm_for_checkpoint(&mut node0, parent, &spec, DEFAULT_STEADY_INVOCATIONS)
        .expect("warm-up fits");
    let fork = CxlFork::new();
    let ckpt = fork
        .checkpoint(&mut node0, parent)
        .expect("checkpoint fits");
    let restored = fork
        .restore_with(&ckpt, &mut node1, RestoreOptions::mow())
        .expect("restore fits");
    faas::run_invocation(&mut node1, restored.pid, &spec, 0).expect("invocation");
    let data = session.finish();

    let stats = device.stats();
    assert!(stats.total_writes() > 0, "workload must hit the device");
    for (map, name) in [
        (&stats.reads, "reads"),
        (&stats.writes, "writes"),
        (&stats.bytes_read, "bytes_read"),
        (&stats.bytes_written, "bytes_written"),
    ] {
        for (&node, &expected) in map {
            assert_eq!(
                data.registry.counter("cxl_mem", name, Some(node.0)),
                expected,
                "cxl_mem.{name}{{node={}}} disagrees with device stats",
                node.0
            );
        }
        // Totals match too, so telemetry has no per-node key the device
        // does not know about.
        assert_eq!(
            data.registry.counter_across_nodes("cxl_mem", name),
            map.values().sum::<u64>(),
            "cxl_mem.{name} totals disagree"
        );
    }
    let allocated = data.registry.counter("cxl_mem", "pages_allocated", None);
    let freed = data.registry.counter("cxl_mem", "pages_freed", None);
    assert_eq!(
        allocated - freed,
        device.used_pages(),
        "page telemetry disagrees with the device's allocator"
    );

    // Under `--features check`, the very same run must also pass the
    // cross-layer audits: telemetry never perturbs the books it mirrors.
    #[cfg(feature = "check")]
    {
        let mut violations = Vec::new();
        violations.extend(cxl_check::audit_node(&node0));
        violations.extend(cxl_check::audit_node(&node1));
        violations.extend(cxl_check::audit_device(&device));
        violations.extend(cxl_check::check_lock_order());
        assert!(violations.is_empty(), "audit found: {violations:?}");
    }
}

/// Runs one CXLfork cold start with telemetry armed and returns the data.
fn armed_cold_start() -> TelemetryData {
    let model = LatencyModel::calibrated();
    let spec = faas::by_name("Float").expect("Float is in the suite");
    let session = TelemetrySession::start();
    run_cold_start(
        &spec,
        Scenario::cxlfork_default(),
        &model,
        DEFAULT_STEADY_INVOCATIONS,
    );
    session.finish()
}

#[test]
fn phase_spans_partition_their_parent_exactly() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    let data = armed_cold_start();

    let mut parents_seen = 0;
    for parent in data
        .spans
        .iter()
        .filter(|s| s.name == "core.checkpoint" || s.name == "core.restore")
    {
        parents_seen += 1;
        let child_sum: u64 = data
            .spans
            .iter()
            .filter(|c| {
                c.track == parent.track
                    && c.depth == parent.depth + 1
                    && c.start >= parent.start
                    && c.end <= parent.end
                    && c.name.starts_with(&format!("{}.", parent.name))
            })
            .map(cxl_telemetry::SpanRecord::dur_ns)
            .sum();
        assert_eq!(
            child_sum,
            parent.dur_ns(),
            "{} children do not partition the parent",
            parent.name
        );
    }
    assert_eq!(parents_seen, 2, "one checkpoint and one restore expected");

    // The `core.phase.*` counters are the same nanoseconds the phase
    // spans cover, so BenchReport phases and Chrome-trace bars agree.
    for phase in cxlfork_bench::CORE_PHASES {
        let counter_ns = data
            .registry
            .counter("core", &format!("phase.{phase}"), None);
        let span_ns: u64 = data
            .spans
            .iter()
            .filter(|s| s.name == format!("core.{phase}"))
            .map(cxl_telemetry::SpanRecord::dur_ns)
            .sum();
        assert_eq!(counter_ns, span_ns, "phase {phase} drifted from its span");
    }
}

#[test]
fn chrome_trace_round_trips_every_span() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    let data = armed_cold_start();

    let trace = chrome_trace(&data.spans);
    let doc = Json::parse(&trace).expect("exported trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");

    let complete: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect();
    assert_eq!(complete.len(), data.spans.len(), "one X event per span");

    // The exported durations carry the exact nanoseconds, so the trace
    // sums to the same virtual time the report sees.
    let trace_ns: u64 = complete
        .iter()
        .map(|e| {
            e.get("args")
                .and_then(|a| a.get("dur_ns"))
                .and_then(Json::as_u64)
                .expect("dur_ns arg")
        })
        .sum();
    let span_ns: u64 = data
        .spans
        .iter()
        .map(cxl_telemetry::SpanRecord::dur_ns)
        .sum();
    assert_eq!(trace_ns, span_ns);
}

#[test]
fn cold_start_report_is_valid_and_deterministic() {
    let _guard = TELEMETRY_LOCK.lock().unwrap();
    let model = LatencyModel::calibrated();
    let a = cold_start_report(&model);
    let b = cold_start_report(&model);

    a.report.validate().expect("report passes its own schema");
    assert_eq!(a.report, b.report, "report generation is not deterministic");
    assert_eq!(
        a.report.to_json(),
        b.report.to_json(),
        "serialized reports must be byte-identical"
    );

    let e2e = a.report.latency_named("e2e").expect("e2e summary");
    assert_eq!(
        e2e.samples, 15,
        "3 report functions x 5 scenarios = 15 cold starts"
    );
    assert!(a.report.phase_ns("checkpoint.copy_pages").unwrap() > 0);
    assert!(a.report.phase_ns("restore.prefetch").unwrap() > 0);
    assert!(a.report.virtual_ns > 0);

    let back = cxl_telemetry::BenchReport::from_json(&a.report.to_json()).expect("re-parses");
    assert_eq!(back, a.report);
}
