//! Fault injection and node-failure recovery, end to end.
//!
//! Three properties matter and each gets its own test:
//!
//! 1. **Determinism under faults** — the same trace with the same fault
//!    and crash seeds must produce a bit-identical [`PorterReport`];
//!    changing the seed must move where the faults land.
//! 2. **Failover correctness** — when nodes crash mid-trace (including
//!    mid-checkpoint), every invocation either completes on a surviving
//!    node or is counted as lost work, with zero double-executions, and
//!    no torn staging region outlives the run.
//! 3. **Post-recovery consistency** — under `--features check`, the
//!    cross-layer audits of the surviving nodes and the shared device
//!    report zero violations after recovery.
//! 4. **Coordinator failover** — when the whole coordinator dies (every
//!    DRAM structure gone, only the device survives), a successor
//!    replays the store journal, adopts the recovered images, and
//!    re-leases them instead of re-deploying cold.
//!
//! The seed is overridable with `CXLFAULT_SEED` so CI can sweep it.

use std::sync::Arc;

use cxl_fault::{CrashSchedule, FaultPlan, Injector, NodeCrash};
use cxl_mem::{CxlDevice, NodeId, PageData};
use cxlfork_bench::run_availability;
use cxlporter::{Cluster, CxlPorter, PorterConfig, PorterReport};
use simclock::{LatencyModel, SimDuration, SimTime};
use trace_gen::Invocation;

fn seed() -> u64 {
    std::env::var("CXLFAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

#[test]
fn same_seed_availability_runs_are_bit_identical() {
    let model = LatencyModel::calibrated();
    let a = run_availability(seed(), 2, &model);
    let b = run_availability(seed(), 2, &model);
    assert_eq!(a.report, b.report, "seed {} diverged", seed());
    assert_eq!(a.fault_stats, b.fault_stats);
    assert_eq!(a.trace_len, b.trace_len);
    assert!(a.accounting_balances(), "requests leaked or double-ran");
}

#[test]
fn different_fault_seeds_move_the_faults() {
    // Drive an identical device op sequence under two injector seeds:
    // the same seed must fault the same ops, a different seed must not.
    let run = |plan_seed: u64| {
        let device = Arc::new(CxlDevice::with_capacity_mib(64));
        let injector = Arc::new(Injector::from_plan(
            FaultPlan::new(plan_seed).with_transient_rate(0.05),
        ));
        injector.arm(&device);
        let region = device.create_region("r");
        let pages: Vec<_> = (0..64)
            .map(|_| device.alloc_page(region).expect("fits"))
            .collect();
        for p in &pages {
            let _ = device.write_page(*p, PageData::pattern(1), NodeId(0));
        }
        for p in &pages {
            let _ = device.read_page(*p, NodeId(0));
        }
        (injector.fault_log(), injector.stats())
    };
    let (log_a, stats_a) = run(seed());
    let (log_b, stats_b) = run(seed());
    assert_eq!(log_a, log_b, "same seed, same op sequence, same faults");
    assert_eq!(stats_a, stats_b);
    assert!(stats_a.transients > 0, "rate high enough to fire at all");
    let (log_c, _) = run(seed() + 1);
    assert_ne!(log_a, log_c, "a different seed must move the faults");

    // Crash schedules are seeded the same way.
    let dur = SimDuration::from_secs(10);
    assert_eq!(
        CrashSchedule::from_plan(seed(), 3, dur, 4),
        CrashSchedule::from_plan(seed(), 3, dur, 4)
    );
    assert_ne!(
        CrashSchedule::from_plan(seed(), 3, dur, 4),
        CrashSchedule::from_plan(seed() + 1, 3, dur, 4)
    );
}

/// A trace that keeps all three nodes busy: a steady drip of requests
/// plus synchronized bursts right before each scheduled crash, so the
/// crashed node is guaranteed to hold in-flight work.
fn failover_trace() -> Vec<Invocation> {
    let mut trace = Vec::new();
    let functions = ["Float", "Json", "Pyaes"];
    for tick in 0..100u64 {
        let t = SimTime::ZERO + SimDuration::from_millis(tick * 100);
        trace.push(Invocation {
            time: t,
            function: functions[(tick % 3) as usize].into(),
            owner: 0,
        });
    }
    // Bursts at t = 3 s and t = 6 s: twelve simultaneous arrivals force
    // instances onto every node, all busy when the crash lands 1 ms
    // later.
    for burst_at in [3_000u64, 6_000] {
        let t = SimTime::ZERO + SimDuration::from_millis(burst_at);
        for i in 0..12u64 {
            trace.push(Invocation {
                time: t,
                function: functions[(i % 3) as usize].into(),
                owner: 0,
            });
        }
    }
    trace.sort_by(|a, b| a.time.cmp(&b.time).then(a.function.cmp(&b.function)));
    trace
}

fn run_failover() -> (PorterReport, u64, bool) {
    let cluster = Cluster::new(3, 2048, 8192, LatencyModel::calibrated());
    let injector = Arc::new(Injector::from_plan(
        FaultPlan::new(seed()).with_transient_rate(1e-4),
    ));
    injector.arm(&cluster.device);
    let mut porter = CxlPorter::new(
        cluster,
        cxlfork::CxlFork::new(),
        PorterConfig {
            checkpoint_after: 2,
            ..PorterConfig::cxlfork_dynamic()
        },
    );
    // Node 2 dies mid-checkpoint at 3.001 s, node 1 at 6.001 s — both
    // one millisecond into a twelve-request burst, so each holds
    // in-flight invocations at the instant it dies.
    porter.set_crash_schedule(CrashSchedule::from_events(vec![
        NodeCrash {
            node: 2,
            at: SimTime::ZERO + SimDuration::from_millis(3_001),
            mid_checkpoint: true,
        },
        NodeCrash {
            node: 1,
            at: SimTime::ZERO + SimDuration::from_millis(6_001),
            mid_checkpoint: false,
        },
    ]));
    let trace = failover_trace();
    let report = porter.run_trace(&trace);

    let staging_empty = porter.cluster.device.staging_regions().is_empty();

    // Post-recovery consistency: the surviving nodes and the shared
    // device must audit clean (the dead nodes were torn down and must
    // not have leaked into the shared books either).
    #[cfg(feature = "check")]
    {
        let violations = porter.audit();
        assert!(
            violations.is_empty(),
            "post-recovery audit failed: {violations:?}"
        );
    }

    (report, trace.len() as u64, staging_empty)
}

#[test]
fn node_crashes_fail_over_to_survivors() {
    let (report, trace_len, staging_empty) = run_failover();

    assert_eq!(report.crashes_survived, 2, "both scheduled crashes fired");
    assert!(
        report.redispatched >= 1,
        "the bursts guarantee in-flight work on the crashed nodes"
    );
    // Exactly-once: every trace request and every re-dispatch lands in
    // precisely one outcome bucket — no loss without accounting, no
    // double execution.
    assert_eq!(
        report.warm_hits + report.restores + report.full_cold + report.dropped,
        trace_len + report.redispatched,
        "request accounting must balance"
    );
    // The mid-checkpoint crash left a torn staging region; two-phase
    // commit kept it un-restorable and the lease GC collected it.
    assert!(report.orphan_regions_reclaimed >= 1);
    assert!(report.orphan_pages_reclaimed >= 1);
    assert!(
        staging_empty,
        "no staging region may outlive the run's recovery"
    );
    // Survivors kept serving: the run completed far more requests than
    // it lost.
    let completed = report.warm_hits + report.restores + report.full_cold;
    assert!(completed > trace_len / 2);
}

#[test]
fn failover_runs_are_bit_identical() {
    let (a, _, _) = run_failover();
    let (b, _, _) = run_failover();
    assert_eq!(a, b, "failover must be deterministic for a fixed seed");
}

fn durable_config() -> cxl_store::StoreConfig {
    cxl_store::StoreConfig {
        durable: true,
        ..cxl_store::StoreConfig::default()
    }
}

/// One full coordinator-failover cycle: coordinator A publishes durable
/// images, dies entirely (porter, object store, checkpoint handles, and
/// the store's DRAM index all dropped — only the device survives), then
/// successor B attaches to the same device, replays the journal, and
/// adopts the recovered store.
fn run_coordinator_failover() -> (
    PorterReport,
    cxl_store::RecoveryReport,
    Vec<cxl_store::ImageId>,
) {
    // Coordinator A: durable store wired through both the mechanism
    // (checkpoints intern through it) and the porter (lease + GC).
    let cluster = Cluster::new(3, 2048, 8192, LatencyModel::calibrated());
    let device = Arc::clone(&cluster.device);
    let store = Arc::new(cxl_store::Store::with_config(
        Arc::clone(&device),
        durable_config(),
    ));
    let mut porter = CxlPorter::new(
        cluster,
        cxlfork::CxlFork::with_store(Arc::clone(&store)),
        PorterConfig {
            checkpoint_after: 2,
            ..PorterConfig::cxlfork_dynamic()
        },
    )
    .with_image_store(Arc::clone(&store));
    let report_a = porter.run_trace(&failover_trace());
    assert!(
        report_a.checkpoints >= 1,
        "coordinator A must publish images"
    );
    let published = store.images();
    assert!(
        !published.is_empty(),
        "published images must be live at death"
    );

    // The coordinator dies: every DRAM structure goes with it.
    drop(porter);
    drop(store);

    // Successor B: same device, fresh DRAM. Recover the store from the
    // journal, wire the same Arc into mechanism and porter, adopt.
    let (recovered, recovery) =
        cxl_store::Store::recover(Arc::clone(&device), durable_config(), NodeId(0));
    let recovered = Arc::new(recovered);
    let cluster_b = Cluster::with_device(3, 2048, Arc::clone(&device), LatencyModel::calibrated());
    let mut porter_b = CxlPorter::new(
        cluster_b,
        cxlfork::CxlFork::with_store(Arc::clone(&recovered)),
        PorterConfig {
            checkpoint_after: 2,
            ..PorterConfig::cxlfork_dynamic()
        },
    );
    porter_b.adopt_recovered_store(Arc::clone(&recovered), &recovery, NodeId(0));

    // Every recovered image is re-leased to the adopter — protected
    // from the watermark GC until its function re-registers.
    let adopted = recovered.images();
    assert_eq!(
        adopted, published,
        "recovery must rebuild A's exact catalog"
    );
    for &image in &adopted {
        let meta = recovered
            .image_meta(image)
            .expect("recovered image is live");
        assert_eq!(
            meta.lease,
            Some(NodeId(0)),
            "recovered image {image:?} must be re-leased to the adopter"
        );
    }

    // The successor serves the same workload; re-checkpoints dedup
    // against the recovered index instead of re-copying every page.
    let report_b = porter_b.run_trace(&failover_trace());

    #[cfg(feature = "check")]
    {
        let mut violations = porter_b.audit();
        violations.extend(cxl_check::audit_journal(&recovered));
        assert!(
            violations.is_empty(),
            "post-adoption audit failed: {violations:?}"
        );
    }

    (report_b, recovery, adopted)
}

#[test]
fn coordinator_crash_adopts_and_re_leases_recovered_images() {
    let (report, recovery, adopted) = run_coordinator_failover();

    assert!(recovery.committed_images >= 1, "journal must replay images");
    assert_eq!(recovery.committed_images as usize, adopted.len());
    assert_eq!(
        recovery.fingerprint_mismatches, 0,
        "recovered index must pass the fingerprint cross-check"
    );
    assert!(recovery.pages_scanned > 0, "replay must read the journal");

    // Adoption accounting: the report carries the recovered-image count
    // and the virtual time the adopter spent replaying the journal.
    assert_eq!(report.recovered_images, recovery.committed_images);
    assert!(
        report.journal_replay_ns > 0,
        "journal replay must cost virtual time"
    );
    // Warm continuation: the successor's re-checkpoints dedup against
    // the recovered index rather than re-copying every page cold.
    assert!(
        report.store_deduped_pages > 0,
        "re-checkpoints must dedup against the recovered store"
    );
}

#[test]
fn coordinator_failover_is_bit_identical() {
    let (ra, va, ia) = run_coordinator_failover();
    let (rb, vb, ib) = run_coordinator_failover();
    assert_eq!(ra, rb, "successor report must be deterministic");
    assert_eq!(va, vb, "recovery report must be deterministic");
    assert_eq!(ia, ib, "adopted catalog must be deterministic");
}
