//! Eviction under capacity pressure, end to end: fill the checkpoint
//! store past its high watermark through real `CxlFork` checkpoints,
//! then prove the watermark GC
//!
//! * evicts LRU-by-last-restore among unprotected images only — pinned
//!   images and images leased to live nodes survive;
//! * turns a restore of an evicted image into a typed
//!   [`RforkError::EvictedImage`] miss, never a zombie process;
//! * recovers from a "crash mid-eviction" (a partial sweep whose driver
//!   died) when a survivor resumes the sweep, bit-identically under the
//!   same `CXLFAULT_SEED`, with every ledger balanced afterwards.

use std::sync::Arc;

use cxl_fault::{FaultPlan, Injector, LeaseTable};
use cxl_mem::{CxlDevice, NodeId};
use cxl_store::{ImageId, Store, StoreConfig};
use cxlfork::CxlFork;
use node_os::fs::SharedFs;
use node_os::mm::Access;
use node_os::vma::Protection;
use node_os::{Node, NodeConfig, Pid};
use rfork::{RemoteFork, RestoreOptions, RforkError, TierPolicy};
use simclock::{SimDuration, SimTime};

const DEVICE_PAGES: u64 = 256;
const FILE_PAGES: u64 = 24;
const HEAP_PAGES: u64 = 8;

fn seed() -> u64 {
    std::env::var("CXLFAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

fn opts() -> RestoreOptions {
    RestoreOptions {
        policy: TierPolicy::MigrateOnWrite,
        prefetch_dirty: false,
        sync_hot_prefetch: false,
    }
}

struct Rig {
    nodes: Vec<Node>,
    device: Arc<CxlDevice>,
    store: Arc<Store>,
    fork: CxlFork,
}

fn rig(config: StoreConfig) -> Rig {
    let device = Arc::new(CxlDevice::new(DEVICE_PAGES));
    let rootfs = Arc::new(SharedFs::new());
    let nodes: Vec<Node> = (0..2)
        .map(|i| {
            Node::with_rootfs(
                NodeConfig::default().with_id(i as u32),
                Arc::clone(&device),
                Arc::clone(&rootfs),
            )
        })
        .collect();
    let store = Arc::new(Store::with_config(Arc::clone(&device), config));
    let fork = CxlFork::with_store(Arc::clone(&store));
    Rig {
        nodes,
        device,
        store,
        fork,
    }
}

/// Spawns a process whose checkpoint image has content unique to `tag`
/// (a private library file with its own seed) plus a small shared-zero
/// heap, and returns its pid.
fn build_function(node: &mut Node, tag: u64) -> Pid {
    node.rootfs().create(
        &format!("/opt/f{tag}/lib.so"),
        FILE_PAGES * node_os::PAGE_SIZE,
        100 + tag,
    );
    let pid = node.spawn(&format!("f{tag}")).unwrap();
    node.process_mut(pid)
        .unwrap()
        .mm
        .map_anonymous(0, HEAP_PAGES, Protection::read_write(), "heap")
        .unwrap();
    for vpn in 0..HEAP_PAGES {
        node.access(pid, vpn, Access::Write).unwrap();
    }
    node.process_mut(pid)
        .unwrap()
        .mm
        .map_file(
            4096,
            FILE_PAGES,
            Protection::read_only(),
            &format!("/opt/f{tag}/lib.so"),
            0,
        )
        .unwrap();
    for vpn in 4096..4096 + FILE_PAGES {
        node.access(pid, vpn, Access::Read).unwrap();
    }
    pid
}

fn audit_clean(rig: &Rig) {
    #[cfg(feature = "check")]
    {
        let mut violations = cxl_check::audit_device(&rig.device);
        violations.extend(cxl_check::audit_store(&rig.store));
        assert!(violations.is_empty(), "books must balance: {violations:?}");
    }
    #[cfg(not(feature = "check"))]
    let _ = rig;
}

#[test]
fn watermark_eviction_is_lru_and_spares_pinned_and_leased_images() {
    let mut r = rig(StoreConfig {
        high_watermark: 0.35,
        low_watermark: 0.20,
        ..StoreConfig::default()
    });
    let now = SimTime::from_nanos(1_000_000_000);

    // Four distinct images fill the device past the high watermark.
    let mut ckpts = Vec::new();
    for tag in 0..4 {
        let pid = build_function(&mut r.nodes[0], tag);
        ckpts.push(r.fork.checkpoint(&mut r.nodes[0], pid).unwrap());
    }
    let images: Vec<ImageId> = ckpts
        .iter()
        .map(|c| ImageId(r.fork.image_id(c).expect("store-backed")))
        .collect();
    assert!(
        r.device.utilization() > 0.35,
        "setup must exceed the high watermark: {}",
        r.device.utilization()
    );

    // Protect image 0 by pin and image 1 by a lease its holder renews;
    // image 3 was restored recently, image 2 never — so 2 is the LRU
    // victim and must go first.
    r.store.set_pinned(images[0], true).unwrap();
    r.store.set_lease(images[1], Some(NodeId(0))).unwrap();
    let mut leases = LeaseTable::new(SimDuration::from_secs(30));
    leases.renew(NodeId(0), now);
    let restored = r
        .fork
        .restore_with(&ckpts[3], &mut r.nodes[1], opts())
        .unwrap();
    assert!(r.nodes[1].process(restored.pid).is_ok());

    let report = r.store.evict_to_low_watermark(&leases, now);
    assert!(report.images >= 1, "pressure must evict something");
    assert!(!r.store.is_live(images[2]), "LRU unpinned image evicted");
    assert!(r.store.is_live(images[0]), "pinned image survives");
    assert!(r.store.is_live(images[1]), "leased image survives");
    // The sweep stops at the low watermark or when only protected
    // images remain.
    assert!(
        r.device.utilization() <= 0.20 || !r.store.is_live(images[3]),
        "sweep must drive below low or exhaust the evictable set"
    );

    // A restore of the evicted image is a typed miss, not a zombie.
    let before = r.nodes[1].pids().len();
    let err = r.fork.restore_with(&ckpts[2], &mut r.nodes[1], opts());
    assert!(
        matches!(err, Err(RforkError::EvictedImage { image }) if image == images[2].0),
        "expected typed EvictedImage miss, got {err:?}"
    );
    assert_eq!(r.nodes[1].pids().len(), before, "no zombie process");
    // Releasing the stale handle is a no-op, not an error.
    let ckpt2 = ckpts.remove(2);
    assert_eq!(r.fork.release(ckpt2, &r.nodes[0]), Ok(0));
    audit_clean(&r);
}

#[test]
fn lease_lapse_exposes_a_crashed_owners_images_to_eviction() {
    let mut r = rig(StoreConfig {
        high_watermark: 0.05,
        low_watermark: 0.04,
        ..StoreConfig::default()
    });
    let t0 = SimTime::from_nanos(1_000_000_000);
    let pid = build_function(&mut r.nodes[0], 0);
    let ckpt = r.fork.checkpoint(&mut r.nodes[0], pid).unwrap();
    let image = ImageId(r.fork.image_id(&ckpt).unwrap());
    r.store.set_lease(image, Some(NodeId(0))).unwrap();

    let mut leases = LeaseTable::new(SimDuration::from_secs(30));
    leases.renew(NodeId(0), t0);
    // While the owner renews, pressure cannot touch its image.
    assert_eq!(r.store.evict_to_low_watermark(&leases, t0).images, 0);
    assert!(r.store.is_live(image));

    // The owner stops renewing (crash); past the TTL its image is fair
    // game and the same sweep reclaims it.
    let later = t0 + SimDuration::from_secs(120);
    let report = r.store.evict_to_low_watermark(&leases, later);
    assert_eq!(report.images, 1);
    assert!(!r.store.is_live(image));
    audit_clean(&r);
}

/// One full interrupted-sweep scenario under seeded transient faults;
/// returns observables for bit-identity comparison.
fn crash_mid_eviction_run(plan_seed: u64) -> (u64, u64, cxl_store::StoreStats) {
    let mut r = rig(StoreConfig {
        high_watermark: 0.30,
        low_watermark: 0.10,
        ..StoreConfig::default()
    });
    let injector = Arc::new(Injector::from_plan(
        FaultPlan::new(plan_seed).with_transient_rate(0.02),
    ));
    injector.arm(&r.device);
    let now = SimTime::from_nanos(1_000_000_000);

    let mut images = Vec::new();
    for tag in 0..3 {
        let pid = build_function(&mut r.nodes[0], tag);
        let ckpt = r.fork.checkpoint(&mut r.nodes[0], pid).unwrap();
        images.push(ImageId(r.fork.image_id(&ckpt).unwrap()));
    }
    // Node 0 also died mid-checkpoint: a pending image holds interned
    // pages that were never committed.
    let torn = r.store.begin_image("torn", NodeId(0), 99, now);
    r.store
        .intern_pages(
            torn,
            &[cxl_mem::PageData::pattern(0xBAD), cxl_mem::PageData::Zero],
            NodeId(0),
        )
        .unwrap();

    // The sweep starts on node 0 ... which crashes after one eviction
    // (a partial sweep: `evict_for` with a tiny target).
    let mut leases = LeaseTable::new(SimDuration::from_secs(30));
    leases.renew(NodeId(0), now);
    leases.renew(NodeId(1), now);
    let partial = r.store.evict_for(r.device.free_pages() + 1, &leases, now);
    assert!(partial.images >= 1, "the interrupted sweep got somewhere");

    // Node 0's lease lapses; the survivor resumes: orphaned pending
    // images roll back first, then the watermark sweep finishes.
    let later = now + SimDuration::from_secs(120);
    leases.renew(NodeId(1), later);
    let rolled_back = r.store.reclaim_orphan_pending(&leases, later);
    assert!(rolled_back > 0, "torn pending image reclaimed");
    assert!(!r.store.is_live(torn));
    r.store.evict_to_low_watermark(&leases, later);

    assert!(
        images.iter().any(|&i| !r.store.is_live(i)),
        "pressure reclaimed committed images too"
    );
    audit_clean(&r);
    (
        r.device.used_pages(),
        injector.stats().transients,
        r.store.stats(),
    )
}

#[test]
fn crash_mid_eviction_recovery_is_deterministic_and_balanced() {
    let a = crash_mid_eviction_run(seed());
    let b = crash_mid_eviction_run(seed());
    assert_eq!(a, b, "same seed must reproduce the run bit-identically");
    let c = crash_mid_eviction_run(seed() + 1);
    // A different seed moves the faults but never the outcome ledgers.
    assert_eq!(a.0, c.0, "fault placement must not change final pages");
}
