//! Integration tests exercising all three remote-fork mechanisms through
//! the common [`rfork::RemoteFork`] interface on the same workload, and
//! verifying functional equivalence: every mechanism must produce a child
//! that computes the same result — they differ only in cost and memory
//! placement.

use std::sync::Arc;

use criu_cxl::CriuCxl;
use cxl_mem::{CxlDevice, CxlFs};
use cxlfork::CxlFork;
use mitosis_cxl::MitosisCxl;
use node_os::addr::{PhysAddr, VirtPageNum};
use node_os::fs::SharedFs;
use node_os::mm::Access;
use node_os::process::Registers;
use node_os::vma::Protection;
use node_os::{Node, NodeConfig, Pid};
use rfork::{RemoteFork, Restored};

struct Cluster {
    device: Arc<CxlDevice>,
    src: Node,
    dst: Node,
}

/// Post-condition under `--features check`: the given nodes' memory
/// ledgers, the device's region books and the lock-order graph are all
/// consistent. Live checkpoints are fine — the audit verifies balance,
/// not emptiness.
fn audit_clean(nodes: &[&Node], device: &CxlDevice) {
    #[cfg(feature = "check")]
    {
        let mut violations = Vec::new();
        for node in nodes {
            violations.extend(cxl_check::audit_node(node));
        }
        violations.extend(cxl_check::audit_device(device));
        violations.extend(cxl_check::check_lock_order());
        assert!(
            violations.is_empty(),
            "cross-layer audit failed: {violations:?}"
        );
    }
    #[cfg(not(feature = "check"))]
    let _ = (nodes, device);
}

impl Cluster {
    fn audit_clean(&self) {
        audit_clean(&[&self.src, &self.dst], &self.device);
    }
}

fn cluster() -> Cluster {
    let device = Arc::new(CxlDevice::with_capacity_mib(512));
    let rootfs = Arc::new(SharedFs::new());
    rootfs.create("/opt/app/lib.so", 64 * 4096, 0xAA);
    Cluster {
        src: Node::with_rootfs(
            NodeConfig::default().with_id(0).with_local_mem_mib(512),
            Arc::clone(&device),
            Arc::clone(&rootfs),
        ),
        dst: Node::with_rootfs(
            NodeConfig::default().with_id(1).with_local_mem_mib(512),
            Arc::clone(&device),
            rootfs,
        ),
        device,
    }
}

/// Builds a process with recognizable state in every category: written
/// anonymous pages, read file pages, registers, fds, namespaces.
fn build_victim(node: &mut Node) -> Pid {
    let pid = node.spawn("victim").unwrap();
    {
        let p = node.process_mut(pid).unwrap();
        p.task.regs = Registers::seeded(0xDEAD_BEEF);
        p.task.ns.pid_ns = 77;
        p.task.ns.mount_ns = 88;
        p.mm.map_anonymous(0, 64, Protection::read_write(), "heap")
            .unwrap();
        p.mm.map_file(1 << 16, 32, Protection::read_exec(), "/opt/app/lib.so", 0)
            .unwrap();
        p.task.fds.open(node_os::process::FileDescriptor {
            path: "/opt/app/lib.so".into(),
            offset: 4096,
            writable: false,
        });
    }
    for i in 0..64 {
        node.access(pid, i, Access::Write).unwrap();
    }
    for i in 0..16 {
        node.access(pid, (1 << 16) + i, Access::Read).unwrap();
    }
    pid
}

/// Writes a distinctive byte into anon page 7 of `pid`.
fn scribble(node: &mut Node, pid: Pid, value: u8) {
    let pte = node.process(pid).unwrap().mm.translate(VirtPageNum(7));
    let Some(PhysAddr::Local(pfn)) = pte.target() else {
        panic!("page 7 should be local on the source");
    };
    node.with_process_ctx(pid, |_, ctx| ctx.frames.data_mut(pfn).write(123, &[value]))
        .unwrap();
}

/// Reads the byte at offset 123 of anon page 7 of a restored child,
/// wherever it lives (local frame or CXL page).
fn child_byte(node: &mut Node, device: &CxlDevice, pid: Pid) -> u8 {
    // Ensure the page is mapped (MoA restores start empty).
    node.access(pid, 7, Access::Read).unwrap();
    let pte = node.process(pid).unwrap().mm.translate(VirtPageNum(7));
    match pte.target().expect("mapped after access") {
        PhysAddr::Local(pfn) => node.frames().data(pfn).byte_at(123),
        PhysAddr::Cxl(page) => {
            let data = device.read_page(page, node.id()).unwrap();
            data.byte_at(123)
        }
    }
}

fn verify_restored(c: &mut Cluster, restored: &Restored, mech_name: &str) {
    let child = c.dst.process(restored.pid).unwrap();
    assert_eq!(
        child.task.regs,
        Registers::seeded(0xDEAD_BEEF),
        "{mech_name}: registers survive"
    );
    assert_eq!(child.task.ns.pid_ns, 77, "{mech_name}: pid ns restored");
    assert_eq!(child.task.ns.mount_ns, 88, "{mech_name}: mount ns restored");
    assert_eq!(
        child.task.fds.open_count(),
        1,
        "{mech_name}: fds reopened from paths"
    );
    assert_eq!(
        child.task.fds.get(0).unwrap().path,
        "/opt/app/lib.so",
        "{mech_name}: fd path preserved"
    );
    let byte = child_byte(&mut c.dst, &c.device, restored.pid);
    assert_eq!(byte, 0x5A, "{mech_name}: memory contents preserved");
}

#[test]
fn criu_preserves_full_process_state() {
    let mut c = cluster();
    let pid = build_victim(&mut c.src);
    scribble(&mut c.src, pid, 0x5A);
    let criu = CriuCxl::new(Arc::new(CxlFs::new(Arc::clone(&c.device))));
    let ckpt = criu.checkpoint(&mut c.src, pid).unwrap();
    let restored = criu.restore(&ckpt, &mut c.dst).unwrap();
    verify_restored(&mut c, &restored, "CRIU-CXL");
    c.audit_clean();
}

#[test]
fn mitosis_preserves_full_process_state() {
    let mut c = cluster();
    let pid = build_victim(&mut c.src);
    scribble(&mut c.src, pid, 0x5A);
    let mitosis = MitosisCxl::new();
    let ckpt = mitosis.checkpoint(&mut c.src, pid).unwrap();
    let restored = mitosis.restore(&ckpt, &mut c.dst).unwrap();
    verify_restored(&mut c, &restored, "Mitosis-CXL");
    c.audit_clean();
}

#[test]
fn cxlfork_preserves_full_process_state_under_every_policy() {
    for options in [
        rfork::RestoreOptions::mow(),
        rfork::RestoreOptions::moa(),
        rfork::RestoreOptions::hybrid(),
        rfork::RestoreOptions {
            policy: rfork::TierPolicy::MigrateOnWrite,
            prefetch_dirty: false,
            sync_hot_prefetch: false,
        },
    ] {
        let mut c = cluster();
        let pid = build_victim(&mut c.src);
        scribble(&mut c.src, pid, 0x5A);
        let fork = CxlFork::new();
        let ckpt = fork.checkpoint(&mut c.src, pid).unwrap();
        let restored = fork.restore_with(&ckpt, &mut c.dst, options).unwrap();
        verify_restored(&mut c, &restored, &format!("CXLfork-{}", options.policy));
        c.audit_clean();
    }
}

#[test]
fn children_of_different_mechanisms_are_mutually_isolated() {
    let mut c = cluster();
    let pid = build_victim(&mut c.src);
    scribble(&mut c.src, pid, 0x5A);

    let fork = CxlFork::new();
    let mitosis = MitosisCxl::new();
    let fckpt = fork.checkpoint(&mut c.src, pid).unwrap();
    let mckpt = mitosis.checkpoint(&mut c.src, pid).unwrap();

    let r1 = fork.restore(&fckpt, &mut c.dst).unwrap();
    let r2 = mitosis.restore(&mckpt, &mut c.dst).unwrap();

    // Child 1 writes page 7; child 2 must still see the original byte.
    c.dst.access(r1.pid, 7, Access::Write).unwrap();
    let pte = c.dst.process(r1.pid).unwrap().mm.translate(VirtPageNum(7));
    let Some(PhysAddr::Local(pfn)) = pte.target() else {
        panic!()
    };
    c.dst
        .with_process_ctx(r1.pid, |_, ctx| {
            ctx.frames.data_mut(pfn).write(123, &[0xFF]);
        })
        .unwrap();
    assert_eq!(child_byte(&mut c.dst, &c.device, r2.pid), 0x5A);
    c.audit_clean();
}

#[test]
fn cxlfork_rejects_shared_anonymous_mappings() {
    // §4.1: "CXLfork does not currently support shared anonymous memory
    // mappings."
    let mut c = cluster();
    let pid = build_victim(&mut c.src);
    {
        let p = c.src.process_mut(pid).unwrap();
        let mut vma =
            node_os::vma::Vma::anonymous(1 << 20, (1 << 20) + 8, Protection::read_write(), "shm");
        vma.kind = node_os::vma::VmaKind::SharedAnonymous;
        p.mm.vmas.insert(vma).unwrap();
    }
    let fork = CxlFork::new();
    let used_before = c.device.used_pages();
    let err = fork.checkpoint(&mut c.src, pid).unwrap_err();
    assert!(matches!(err, rfork::RforkError::Unsupported(_)), "{err}");
    assert_eq!(c.device.used_pages(), used_before, "nothing leaked");
    c.audit_clean();
}

#[test]
fn failed_checkpoints_leak_no_device_pages() {
    // A device too small for the process's checkpoint: every mechanism
    // must fail cleanly, leaving the device exactly as it was.
    let device = Arc::new(CxlDevice::new(16)); // 64 KiB device
    let rootfs = Arc::new(SharedFs::new());
    let mut src = Node::with_rootfs(
        NodeConfig::default().with_id(0).with_local_mem_mib(64),
        Arc::clone(&device),
        rootfs,
    );
    let pid = src.spawn("big").unwrap();
    src.process_mut(pid)
        .unwrap()
        .mm
        .map_anonymous(0, 64, Protection::read_write(), "heap")
        .unwrap();
    for i in 0..64 {
        src.access(pid, i, Access::Write).unwrap();
    }

    let used_before = device.used_pages();
    let fork = CxlFork::new();
    assert!(fork.checkpoint(&mut src, pid).is_err());
    assert_eq!(device.used_pages(), used_before, "cxlfork leaked");

    let criu = CriuCxl::new(Arc::new(CxlFs::new(Arc::clone(&device))));
    assert!(criu.checkpoint(&mut src, pid).is_err());
    assert_eq!(device.used_pages(), used_before, "criu leaked");

    let trenv = trenv_cxl::TrEnvCxl::new();
    assert!(trenv.checkpoint(&mut src, pid).is_err());
    assert_eq!(device.used_pages(), used_before, "trenv leaked");
    // Failed checkpoints must also leave the source node's ledgers intact
    // (no half-built template pinning frames, no stray refcounts).
    audit_clean(&[&src], &device);
}

#[test]
fn restore_latency_ordering_matches_the_paper() {
    // CRIU >> Mitosis > CXLfork for a non-trivial footprint.
    let mut c = cluster();
    let pid = build_victim(&mut c.src);

    let criu = CriuCxl::new(Arc::new(CxlFs::new(Arc::clone(&c.device))));
    let mitosis = MitosisCxl::new();
    let fork = CxlFork::new();
    let c1 = criu.checkpoint(&mut c.src, pid).unwrap();
    let c2 = mitosis.checkpoint(&mut c.src, pid).unwrap();
    let c3 = fork.checkpoint(&mut c.src, pid).unwrap();

    let r1 = criu.restore(&c1, &mut c.dst).unwrap();
    let r2 = mitosis.restore(&c2, &mut c.dst).unwrap();
    let r3 = fork
        .restore_with(
            &c3,
            &mut c.dst,
            rfork::RestoreOptions {
                policy: rfork::TierPolicy::MigrateOnWrite,
                prefetch_dirty: false,
                sync_hot_prefetch: false,
            },
        )
        .unwrap();

    assert!(
        r1.restore_latency > r2.restore_latency,
        "CRIU {} vs Mitosis {}",
        r1.restore_latency,
        r2.restore_latency
    );
    assert!(
        r2.restore_latency > r3.restore_latency,
        "Mitosis {} vs CXLfork {}",
        r2.restore_latency,
        r3.restore_latency
    );
    c.audit_clean();
}

#[test]
fn checkpoint_cost_ordering_matches_the_paper() {
    // Mitosis < CXLfork << CRIU.
    let mut c = cluster();
    let pid = build_victim(&mut c.src);
    let criu = CriuCxl::new(Arc::new(CxlFs::new(Arc::clone(&c.device))));
    let mitosis = MitosisCxl::new();
    let fork = CxlFork::new();
    let c1 = criu.checkpoint(&mut c.src, pid).unwrap();
    let c2 = mitosis.checkpoint(&mut c.src, pid).unwrap();
    let c3 = fork.checkpoint(&mut c.src, pid).unwrap();
    let (k1, k2, k3) = (
        criu.meta(&c1).checkpoint_cost,
        mitosis.meta(&c2).checkpoint_cost,
        fork.meta(&c3).checkpoint_cost,
    );
    assert!(k2 < k3, "Mitosis {k2} < CXLfork {k3}");
    assert!(k3 < k1, "CXLfork {k3} < CRIU {k1}");
    c.audit_clean();
}
