//! Integration tests pinning the paper's headline claims in *shape* (who
//! wins, in which direction) on a small function so they stay fast enough
//! for `cargo test`. The full-magnitude reproduction lives in the bench
//! harness (`cargo bench -p cxlfork-bench`); EXPERIMENTS.md records
//! paper-vs-measured numbers.

use cxlfork_bench::{run_cold_start, run_tiering, Scenario};
use rfork::RestoreOptions;
use simclock::LatencyModel;

const STEADY: u64 = 8;

fn spec() -> faas::FunctionSpec {
    faas::by_name("Float").expect("Float in suite")
}

#[test]
fn cold_start_ordering_cold_criu_mitosis_cxlfork_localfork() {
    let model = LatencyModel::calibrated();
    let cold = run_cold_start(&spec(), Scenario::Cold, &model, STEADY);
    let criu = run_cold_start(&spec(), Scenario::Criu, &model, STEADY);
    let mitosis = run_cold_start(&spec(), Scenario::Mitosis, &model, STEADY);
    let fork = run_cold_start(&spec(), Scenario::cxlfork_default(), &model, STEADY);
    let local = run_cold_start(&spec(), Scenario::LocalFork, &model, STEADY);

    // Fig. 7a ordering.
    assert!(cold.total > criu.total, "Cold slowest");
    assert!(criu.total > mitosis.total, "CRIU > Mitosis");
    assert!(mitosis.total > fork.total, "Mitosis > CXLfork");
    assert!(fork.total >= local.total, "LocalFork is the floor");
    // §7.1: CXLfork within ~tens of percent of LocalFork; Cold ≈ 11x
    // CXLfork on average (per-function spread is wide, keep it loose).
    assert!(fork.total.ratio(local.total) < 1.5);
    assert!(cold.total.ratio(fork.total) > 5.0);
}

#[test]
fn restore_latency_bands_match_section_7_1() {
    let model = LatencyModel::calibrated();
    // CXLfork restores in single-digit milliseconds for every function in
    // the suite (paper band: 1.2–6.1 ms).
    for name in ["Float", "HTML", "Bert"] {
        let s = faas::by_name(name).unwrap();
        let fork = run_cold_start(&s, Scenario::cxlfork_default(), &model, STEADY);
        assert!(
            fork.restore.as_millis() <= 8,
            "{name}: CXLfork restore {} out of band",
            fork.restore
        );
    }
    // CRIU restore band: 16–423 ms across the suite (paper).
    let small = run_cold_start(
        &faas::by_name("Float").unwrap(),
        Scenario::Criu,
        &model,
        STEADY,
    );
    let big = run_cold_start(
        &faas::by_name("Bert").unwrap(),
        Scenario::Criu,
        &model,
        STEADY,
    );
    assert!(
        (10..=40).contains(&small.restore.as_millis()),
        "small CRIU restore {}",
        small.restore
    );
    assert!(
        (250..=600).contains(&big.restore.as_millis()),
        "BERT CRIU restore {} (paper 423 ms)",
        big.restore
    );
}

#[test]
fn memory_ordering_criu_mitosis_cxlfork() {
    let model = LatencyModel::calibrated();
    let cold = run_cold_start(&spec(), Scenario::Cold, &model, STEADY);
    let criu = run_cold_start(&spec(), Scenario::Criu, &model, STEADY);
    let mitosis = run_cold_start(&spec(), Scenario::Mitosis, &model, STEADY);
    let fork = run_cold_start(&spec(), Scenario::cxlfork_default(), &model, STEADY);

    // Fig. 7b ordering: Cold ≥ CRIU > Mitosis > CXLfork.
    assert!(cold.local_pages >= criu.local_pages);
    assert!(criu.local_pages > mitosis.local_pages);
    assert!(mitosis.local_pages > fork.local_pages);
    // CXLfork consumes a small fraction of Cold (paper avg: 13%).
    assert!(
        (fork.local_pages as f64) < 0.25 * cold.local_pages as f64,
        "CXLfork {} vs Cold {}",
        fork.local_pages,
        cold.local_pages
    );
}

#[test]
fn tiering_tradeoffs_match_fig8() {
    let model = LatencyModel::calibrated();
    let mow = run_tiering(&spec(), RestoreOptions::mow(), &model, STEADY);
    let moa = run_tiering(&spec(), RestoreOptions::moa(), &model, STEADY);
    let ht = run_tiering(&spec(), RestoreOptions::hybrid(), &model, STEADY);

    // MoA trades memory for warm time: strictly more local memory.
    assert!(moa.local_pages > 2 * mow.local_pages);
    // For an LLC-resident function the warm times are near-identical
    // (the cache intercepts both; Fig. 8b "the majority of functions are
    // not affected").
    let warm_ratio = moa.warm.ratio(mow.warm);
    assert!((0.9..=1.1).contains(&warm_ratio), "warm ratio {warm_ratio}");
    // Cold time: MoW fastest for a small cache-friendly function.
    assert!(mow.cold <= moa.cold);
    // HT sits between MoW and MoA in memory.
    assert!(ht.local_pages <= moa.local_pages);
    assert!(ht.local_pages > mow.local_pages);

    // The warm-time benefit of migrating data appears on cache-thrashing
    // functions (Fig. 8b: BFS/Bert "substantially hurt" under MoW).
    let bfs = faas::by_name("BFS").unwrap();
    let bfs_mow = run_tiering(&bfs, RestoreOptions::mow(), &model, STEADY);
    let bfs_moa = run_tiering(&bfs, RestoreOptions::moa(), &model, STEADY);
    assert!(
        bfs_moa.warm.mul_f64(1.5) < bfs_mow.warm,
        "BFS: MoA warm {} should be far under MoW warm {}",
        bfs_moa.warm,
        bfs_mow.warm
    );
}

#[test]
fn cxl_latency_sweep_directionality() {
    // Cold execution improves monotonically as CXL latency drops (Fig. 9b).
    let mut previous = None;
    for ns in [400u64, 250, 100] {
        let model = LatencyModel::builder().cxl_round_trip_ns(ns).build();
        let r = run_tiering(&spec(), RestoreOptions::mow(), &model, STEADY);
        if let Some(prev) = previous {
            assert!(r.cold <= prev, "cold should improve at {ns} ns");
        }
        previous = Some(r.cold);
    }
}

#[test]
fn cache_thrashing_functions_feel_cxl_latency_small_ones_do_not() {
    // Fig. 9a: warm execution of LLC-resident functions is insensitive to
    // CXL latency; cache-thrashing ones are not. Use BFS vs Float.
    let slow = LatencyModel::builder().cxl_round_trip_ns(400).build();
    let fast = LatencyModel::builder().cxl_round_trip_ns(100).build();

    let float = faas::by_name("Float").unwrap();
    let f_slow = run_tiering(&float, RestoreOptions::mow(), &slow, STEADY);
    let f_fast = run_tiering(&float, RestoreOptions::mow(), &fast, STEADY);
    let float_sensitivity = f_slow.warm.ratio(f_fast.warm);

    let bfs = faas::by_name("BFS").unwrap();
    let b_slow = run_tiering(&bfs, RestoreOptions::mow(), &slow, STEADY);
    let b_fast = run_tiering(&bfs, RestoreOptions::mow(), &fast, STEADY);
    let bfs_sensitivity = b_slow.warm.ratio(b_fast.warm);

    assert!(
        float_sensitivity < 1.1,
        "Float insensitive: {float_sensitivity}"
    );
    assert!(bfs_sensitivity > 1.5, "BFS sensitive: {bfs_sensitivity}");
}
