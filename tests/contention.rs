//! Fabric-contention end-to-end properties (satellites of the
//! `cxl-fabric` subsystem):
//!
//! * the zero-load cell of the contention surface reproduces the flat
//!   latency model exactly — attaching an idle fabric is free;
//! * background load erodes the pipelined copy's advantage: queueing
//!   delay is additive and policy-blind, so the p = 8 vs serial speedup
//!   shrinks monotonically as the switch fills up;
//! * measuring a cell with telemetry armed does not move any virtual
//!   cost (observation is free);
//! * striping consecutive images across a device pool beats pinning
//!   them to one device once traffic overlaps in the window.

use cxlfork_bench::{
    run_contention, run_pipeline, run_placement, CONTENTION_PARALLELISM, DEFAULT_STEADY_INVOCATIONS,
};
use simclock::LatencyModel;

fn float_spec() -> faas::FunctionSpec {
    faas::by_name("Float").expect("Float is in the suite")
}

#[test]
fn idle_fabric_reproduces_the_flat_model_exactly() {
    let spec = float_spec();
    for rt in [100, 391] {
        let model = LatencyModel::builder().cxl_round_trip_ns(rt).build();
        let flat = run_pipeline(
            &spec,
            CONTENTION_PARALLELISM,
            &model,
            DEFAULT_STEADY_INVOCATIONS,
        );
        let idle = run_contention(
            &spec,
            CONTENTION_PARALLELISM,
            rt,
            0,
            DEFAULT_STEADY_INVOCATIONS,
        );
        assert_eq!(
            idle.checkpoint_cost, flat.checkpoint_cost,
            "idle fabric moved the checkpoint cost at rt = {rt}"
        );
        assert_eq!(
            idle.restore, flat.restore,
            "idle fabric moved the restore latency at rt = {rt}"
        );
    }
}

#[test]
fn contention_shrinks_the_pipelined_copy_win() {
    // Queueing delay lands after the serial/pipelined clamp, identically
    // on both sides, so (serial + w) / (p8 + w) falls toward 1 as the
    // background load w grows: contention erodes the relative win
    // without ever making p = 8 slower than serial.
    let spec = float_spec();
    let mut prev_speedup = f64::INFINITY;
    for load in [0, 500, 900] {
        let serial = run_contention(&spec, 1, 391, load, DEFAULT_STEADY_INVOCATIONS);
        let piped = run_contention(
            &spec,
            CONTENTION_PARALLELISM,
            391,
            load,
            DEFAULT_STEADY_INVOCATIONS,
        );
        assert!(
            piped.checkpoint_cost <= serial.checkpoint_cost,
            "pipelining must never lose to serial (load = {load})"
        );
        let speedup =
            serial.checkpoint_cost.as_nanos() as f64 / piped.checkpoint_cost.as_nanos() as f64;
        assert!(
            speedup < prev_speedup,
            "the p = {CONTENTION_PARALLELISM} win must shrink with load: \
             {speedup} at {load} ‰ vs {prev_speedup} at the previous level"
        );
        prev_speedup = speedup;
    }
    assert!(
        prev_speedup > 1.0,
        "even a 90 % loaded switch leaves some pipelining win: {prev_speedup}"
    );
}

#[test]
fn armed_telemetry_does_not_move_contention_costs() {
    let spec = float_spec();
    let run = || {
        run_contention(
            &spec,
            CONTENTION_PARALLELISM,
            391,
            750,
            DEFAULT_STEADY_INVOCATIONS,
        )
    };
    let unarmed = run();
    let session = cxl_telemetry::TelemetrySession::start();
    let armed = run();
    let data = session.finish();
    assert_eq!(unarmed.checkpoint_cost, armed.checkpoint_cost);
    assert_eq!(unarmed.restore, armed.restore);
    assert_eq!(unarmed.total, armed.total);
    assert!(
        data.registry.counter("cxl_fabric", "bytes", Some(0)) > 0,
        "armed run records fabric traffic"
    );
}

#[test]
fn striping_beats_locality_under_overlapping_traffic() {
    let spec = float_spec();
    let model = LatencyModel::calibrated();
    let locality = run_placement(
        &spec,
        cxl_fabric::PlacementPolicy::Locality,
        4,
        &model,
        DEFAULT_STEADY_INVOCATIONS,
    );
    let stripe = run_placement(
        &spec,
        cxl_fabric::PlacementPolicy::Stripe,
        4,
        &model,
        DEFAULT_STEADY_INVOCATIONS,
    );
    assert!(
        stripe < locality,
        "two devices must drain overlapping images faster: {stripe:?} vs {locality:?}"
    );
}
