//! Cluster-scale determinism on the discrete-event engine.
//!
//! The engine orders every event by `(time, seq)` with sequence numbers
//! assigned at push, so two runs of the same seeded trace over the same
//! cluster must produce bit-identical [`cxlporter::PorterReport`]s —
//! fairness deferrals, crash re-dispatches, and store evictions
//! included. Plain `cargo test` exercises a smoke-scale trace
//! (`CLUSTER_SMOKE_NODES` nodes, default 8); setting
//! `CLUSTER_FULL_SCALE=1` additionally replays the full 64-node,
//! ≥100k-invocation diurnal trace the `BENCH_cluster.json` report is
//! built from (CI runs that in release mode).

use cxlfork_bench::{run_cluster, run_cluster_with, ClusterOutcome};
use simclock::LatencyModel;
use trace_gen::DiurnalConfig;

fn smoke_nodes() -> usize {
    std::env::var("CLUSTER_SMOKE_NODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

/// A few thousand invocations over a handful of tenants: cheap enough
/// for debug-mode `cargo test`, busy enough to exercise deferrals,
/// crashes, and checkpointing.
fn smoke_config(seed: u64) -> DiurnalConfig {
    DiurnalConfig {
        duration_secs: 60.0,
        total_rps: 40.0,
        tenants: 8,
        functions_per_tenant: 2,
        ..DiurnalConfig::cluster_default(seed)
    }
}

fn smoke_run(seed: u64) -> ClusterOutcome {
    run_cluster_with(
        &smoke_config(seed),
        smoke_nodes(),
        &LatencyModel::calibrated(),
    )
}

#[test]
fn same_seed_is_bit_identical_at_smoke_scale() {
    let a = smoke_run(33);
    let b = smoke_run(33);
    assert_eq!(
        a.report, b.report,
        "same seed, same cluster: the two reports must match bit for bit"
    );
    assert_eq!(a.trace_len, b.trace_len);
    assert!(a.trace_len > 1_000, "smoke trace is non-trivial");
    assert!(
        a.accounting_balances(),
        "requests leaked or double-executed: {:?}",
        a.report
    );
    assert!(a.report.engine_events >= a.trace_len);
}

#[test]
fn different_seeds_diverge() {
    let a = smoke_run(33);
    let b = smoke_run(34);
    assert_ne!(
        a.report, b.report,
        "different seeds must produce different runs"
    );
}

#[test]
fn full_scale_64_nodes_is_bit_identical() {
    if std::env::var("CLUSTER_FULL_SCALE").map(|v| v == "1") != Ok(true) {
        eprintln!("skipping full-scale run; set CLUSTER_FULL_SCALE=1 to enable");
        return;
    }
    let model = LatencyModel::calibrated();
    let a = run_cluster(cxlfork_bench::CLUSTER_SEED, 64, &model);
    let b = run_cluster(cxlfork_bench::CLUSTER_SEED, 64, &model);
    assert!(
        a.trace_len >= 100_000,
        "full-scale trace must carry at least 100k invocations, got {}",
        a.trace_len
    );
    assert_eq!(
        a.report, b.report,
        "64-node runs of the same seed must match bit for bit"
    );
    assert!(a.accounting_balances(), "requests leaked: {:?}", a.report);
    assert!(
        a.report.fair_deferrals > 0,
        "the bursty tenants must hit their quota at full scale"
    );
    assert!(
        a.report.crashes_survived > 0,
        "the seeded crash schedule must fire"
    );
    assert!(
        a.report.image_evictions > 0,
        "the pressured store must evict at full scale"
    );
}
