//! Integration tests for cluster-wide state deduplication: many CXLfork
//! clones across many nodes share one checkpoint's CXL pages, page-table
//! leaves and VMA blocks, while staying perfectly isolated on writes.

use std::sync::Arc;

use cxl_mem::CxlDevice;
use cxlfork::CxlFork;
use node_os::addr::{PhysAddr, VirtPageNum};
use node_os::fs::SharedFs;
use node_os::mm::Access;
use node_os::vma::Protection;
use node_os::{Node, NodeConfig, Pid};
use rfork::{RemoteFork, RestoreOptions, TierPolicy};

const NODES: usize = 4;
const CLONES_PER_NODE: usize = 4;
const HEAP_PAGES: u64 = 256;

fn cluster() -> (Vec<Node>, Arc<CxlDevice>) {
    let device = Arc::new(CxlDevice::with_capacity_mib(256));
    let rootfs = Arc::new(SharedFs::new());
    let nodes = (0..NODES)
        .map(|i| {
            Node::with_rootfs(
                NodeConfig::default()
                    .with_id(i as u32)
                    .with_local_mem_mib(256),
                Arc::clone(&device),
                Arc::clone(&rootfs),
            )
        })
        .collect();
    (nodes, device)
}

/// Post-condition under `--features check`: every node's page tables,
/// frame ledger and VMA tree are mutually consistent, the device's
/// region books balance, and no lock-order cycle has been recorded.
fn audit_clean(nodes: &[Node], device: &CxlDevice) {
    #[cfg(feature = "check")]
    {
        let mut violations = Vec::new();
        for node in nodes {
            violations.extend(cxl_check::audit_node(node));
        }
        violations.extend(cxl_check::audit_device(device));
        violations.extend(cxl_check::check_lock_order());
        assert!(
            violations.is_empty(),
            "cross-layer audit failed: {violations:?}"
        );
    }
    #[cfg(not(feature = "check"))]
    let _ = (nodes, device);
}

fn build_parent(node: &mut Node) -> Pid {
    let pid = node.spawn("shared-fn").unwrap();
    node.process_mut(pid)
        .unwrap()
        .mm
        .map_anonymous(0, HEAP_PAGES, Protection::read_write(), "heap")
        .unwrap();
    for i in 0..HEAP_PAGES {
        node.access(pid, i, Access::Write).unwrap();
    }
    pid
}

#[test]
fn sixteen_clones_share_one_checkpoint_without_device_growth() {
    let (mut nodes, device) = cluster();
    let parent = build_parent(&mut nodes[0]);
    let fork = CxlFork::new();
    let ckpt = fork.checkpoint(&mut nodes[0], parent).unwrap();
    let device_after_ckpt = device.used_pages();

    let opts = RestoreOptions {
        policy: TierPolicy::MigrateOnWrite,
        prefetch_dirty: false,
        sync_hot_prefetch: false,
    };
    let mut clones = Vec::new();
    for (node_idx, node) in nodes.iter_mut().enumerate() {
        for _ in 0..CLONES_PER_NODE {
            let frames_before = node.frames().used();
            let r = fork.restore_with(&ckpt, node, opts).unwrap();
            assert_eq!(node.frames().used(), frames_before, "zero-copy restore");
            clones.push((node_idx, r.pid));
        }
    }
    // 16 clones later: not one extra page on the device.
    assert_eq!(device.used_pages(), device_after_ckpt);

    // Every clone maps the same physical CXL page for vpn 0.
    let mut targets = std::collections::BTreeSet::new();
    for (n, pid) in &clones {
        let pte = nodes[*n]
            .process(*pid)
            .unwrap()
            .mm
            .translate(VirtPageNum(0));
        targets.insert(format!("{:?}", pte.target()));
    }
    assert_eq!(targets.len(), 1, "all clones share one physical page");

    // All clones read identical bytes.
    for (n, pid) in &clones {
        let o = nodes[*n].access(*pid, 0, Access::Read).unwrap();
        assert_eq!(o.fault, None);
    }
    audit_clean(&nodes, &device);
}

#[test]
fn writes_by_any_clone_never_leak_to_siblings_or_checkpoint() {
    let (mut nodes, device) = cluster();
    let parent = build_parent(&mut nodes[0]);
    let fork = CxlFork::new();
    let ckpt = fork.checkpoint(&mut nodes[0], parent).unwrap();
    let opts = RestoreOptions {
        policy: TierPolicy::MigrateOnWrite,
        prefetch_dirty: false,
        sync_hot_prefetch: false,
    };

    let a = fork.restore_with(&ckpt, &mut nodes[1], opts).unwrap();
    let b = fork.restore_with(&ckpt, &mut nodes[2], opts).unwrap();

    // Fingerprint every checkpoint page.
    let before: Vec<u64> = ckpt
        .iter_pages()
        .map(|(_, pte)| {
            let Some(PhysAddr::Cxl(p)) = pte.target() else {
                panic!()
            };
            device.fingerprint(p).unwrap()
        })
        .collect();

    // Clone A writes every page.
    for i in 0..HEAP_PAGES {
        nodes[1].access(a.pid, i, Access::Write).unwrap();
    }
    assert_eq!(
        nodes[1].process(a.pid).unwrap().mm.private_local_pages(),
        HEAP_PAGES,
        "A took private copies"
    );

    // B still reads pristine data from CXL, fault-free.
    for i in 0..HEAP_PAGES {
        let o = nodes[2].access(b.pid, i, Access::Read).unwrap();
        assert_eq!(o.fault, None);
        assert!(o.cxl_tier);
    }
    assert_eq!(nodes[2].process(b.pid).unwrap().mm.private_local_pages(), 0);

    // Checkpoint untouched.
    let after: Vec<u64> = ckpt
        .iter_pages()
        .map(|(_, pte)| {
            let Some(PhysAddr::Cxl(p)) = pte.target() else {
                panic!()
            };
            device.fingerprint(p).unwrap()
        })
        .collect();
    assert_eq!(before, after);
    audit_clean(&nodes, &device);
}

#[test]
fn shared_page_table_leaves_are_copied_per_writer_only() {
    let (mut nodes, device) = cluster();
    let parent = build_parent(&mut nodes[0]);
    let fork = CxlFork::new();
    let ckpt = fork.checkpoint(&mut nodes[0], parent).unwrap();
    let opts = RestoreOptions {
        policy: TierPolicy::MigrateOnWrite,
        prefetch_dirty: false,
        sync_hot_prefetch: false,
    };
    let a = fork.restore_with(&ckpt, &mut nodes[1], opts).unwrap();
    let b = fork.restore_with(&ckpt, &mut nodes[2], opts).unwrap();

    let leaves = ckpt.leaves.len();
    assert_eq!(
        nodes[1]
            .process(a.pid)
            .unwrap()
            .mm
            .page_table
            .attached_leaf_count(),
        leaves
    );
    // A writes one page: exactly one leaf is copied locally.
    nodes[1].access(a.pid, 0, Access::Write).unwrap();
    assert_eq!(
        nodes[1]
            .process(a.pid)
            .unwrap()
            .mm
            .page_table
            .attached_leaf_count(),
        leaves - 1
    );
    // B's attachments are untouched.
    assert_eq!(
        nodes[2]
            .process(b.pid)
            .unwrap()
            .mm
            .page_table
            .attached_leaf_count(),
        leaves
    );
    audit_clean(&nodes, &device);
}

#[test]
fn working_set_monitoring_aggregates_across_nodes() {
    let (mut nodes, device) = cluster();
    let parent = build_parent(&mut nodes[0]);
    let fork = CxlFork::new();
    let ckpt = fork.checkpoint(&mut nodes[0], parent).unwrap();
    ckpt.reset_access_bits();

    let opts = RestoreOptions {
        policy: TierPolicy::MigrateOnWrite,
        prefetch_dirty: false,
        sync_hot_prefetch: false,
    };
    // Clones on different nodes touch disjoint ranges; the shared A bits
    // see the union (cluster-wide working-set estimation, §4.3).
    let a = fork.restore_with(&ckpt, &mut nodes[1], opts).unwrap();
    let b = fork.restore_with(&ckpt, &mut nodes[2], opts).unwrap();
    for i in 0..10 {
        nodes[1].access(a.pid, i, Access::Read).unwrap();
    }
    for i in 100..120 {
        nodes[2].access(b.pid, i, Access::Read).unwrap();
    }
    assert_eq!(ckpt.working_set().hot_pages, 30);
    audit_clean(&nodes, &device);
}

#[test]
fn release_returns_all_device_pages_even_with_live_clones() {
    let (mut nodes, device) = cluster();
    let parent = build_parent(&mut nodes[0]);
    let fork = CxlFork::new();
    let before = device.used_pages();
    let ckpt = fork.checkpoint(&mut nodes[0], parent).unwrap();
    let r = fork.restore(&ckpt, &mut nodes[1]).unwrap();
    // Pull everything the clone needs before the checkpoint goes away.
    for i in 0..HEAP_PAGES {
        nodes[1].access(r.pid, i, Access::Write).unwrap();
    }
    fork.release(ckpt, &nodes[0]).unwrap();
    assert_eq!(device.used_pages(), before);
    // The clone keeps running on its private copies.
    let o = nodes[1].access(r.pid, 5, Access::Read).unwrap();
    assert_eq!(o.fault, None);
    audit_clean(&nodes, &device);
}
