//! Exhaustive crashpoint sweep over the durable store: enumerate every
//! injection site a checkpoint→dedup→evict→restore scenario reaches,
//! kill the coordinator at each one, recover from the surviving device,
//! and prove the recovered state is sound — zero `cxl-check`
//! violations, balanced device-page accounting, byte-identical
//! surviving contents, and bit-identical per-seed [`RecoveryReport`]s.
//!
//! The kill is a panic (`CrashpointKill`), not an error return: a crash
//! must not run the victim's rollback code. The harness drops every
//! DRAM structure after the unwind — only the device survives, exactly
//! the failure model of fabric-attached CXL memory.
//!
//! Environment knobs for the CI smoke (full sweep by default):
//!
//! * `CRASH_SWEEP_POSITIONS` — sweep only the first N injection
//!   positions;
//! * `CRASH_SWEEP_SEEDS` — use only the first N seeds.

use std::collections::BTreeMap;
use std::sync::Arc;

use cxl_fault::{run_to_crash, CrashpointHook, Killer, LeaseTable, Recorder};
use cxl_mem::{CxlDevice, NodeId, PageData, PAGE_SIZE};
use cxl_store::{RecoveryReport, Store, StoreConfig};
use simclock::{SimDuration, SimTime};

const SEEDS: [u64; 3] = [7, 1984, 4242];

fn config() -> StoreConfig {
    StoreConfig {
        durable: true,
        ..StoreConfig::default()
    }
}

fn device() -> Arc<CxlDevice> {
    Arc::new(CxlDevice::with_capacity_mib(16))
}

fn pat(seed: u64, i: u64) -> PageData {
    PageData::pattern(1 + seed * 10_000 + i)
}

/// Every page content the scenario ever interns, by fingerprint — the
/// oracle for byte-identity after recovery.
fn authored_contents(seed: u64) -> BTreeMap<u64, PageData> {
    let mut map = BTreeMap::new();
    for i in [1, 2, 3, 4, 7, 8, 9, 20, 21] {
        let d = pat(seed, i);
        map.insert(d.fingerprint(), d);
    }
    map.insert(PageData::Zero.fingerprint(), PageData::Zero);
    map
}

/// The deterministic scenario under test. Walks the full mutation
/// surface of the durable store: begin/intern (with intra- and
/// cross-image dedup and a zero page), commit, pin, lease, restore
/// touch, abort, release, watermark eviction, and an explicit journal
/// compaction. Every step threads the installed crashpoint hook.
fn scenario(device: &Arc<CxlDevice>, hook: Arc<dyn CrashpointHook>, seed: u64) {
    let store = Store::with_config(Arc::clone(device), config());
    store.set_crash_hook(Some(hook));
    let t0 = SimTime::from_nanos(1_000_000_000);

    // Image A: intra-batch dup (two p1) plus a zero page.
    let a = store.begin_image("sweep:a", NodeId(1), 1, t0);
    let data_a = [
        pat(seed, 1),
        pat(seed, 2),
        pat(seed, 3),
        pat(seed, 4),
        PageData::Zero,
        pat(seed, 1),
    ];
    store.intern_pages(a, &data_a, NodeId(1)).expect("intern a");
    let meta_a = device.create_region("sweep:meta-a");
    store.commit_image(a, meta_a).expect("commit a");

    // Image B: dedups p1/p2 against A.
    let b = store.begin_image("sweep:b", NodeId(2), 2, t0);
    let data_b = [pat(seed, 1), pat(seed, 2), pat(seed, 7), pat(seed, 8)];
    store.intern_pages(b, &data_b, NodeId(2)).expect("intern b");
    let meta_b = device.create_region("sweep:meta-b");
    store.commit_image(b, meta_b).expect("commit b");

    // Pin/lease flips, each a journaled control-plane record.
    store.set_pinned(a, true).expect("pin a");
    store.set_lease(b, Some(NodeId(2))).expect("lease b");

    // Image C: an aborted probe — its refs must unwind.
    let c = store.begin_image("sweep:c", NodeId(1), 3, t0);
    store
        .intern_pages(c, &[pat(seed, 9)], NodeId(1))
        .expect("intern c");
    store.abort_image(c).expect("abort c");

    // Image D: the survivor whose contents the sweep verifies after
    // every recovery; shares p2 with A so A's eviction exercises the
    // shared-page refcount path.
    let d = store.begin_image("sweep:d", NodeId(1), 4, t0);
    let data_d = [pat(seed, 2), pat(seed, 20), pat(seed, 21)];
    store.intern_pages(d, &data_d, NodeId(1)).expect("intern d");
    let meta_d = device.create_region("sweep:meta-d");
    store.commit_image(d, meta_d).expect("commit d");

    // Release B; its meta region is destroyed the way the checkpoint
    // mechanism would (recovery must finish the job if we die between).
    store.set_lease(b, None).expect("unlease b");
    store.release_image(b).expect("release b");
    device.destroy_region(meta_b).expect("destroy meta b");

    // LRU fix-up, then watermark eviction claims A (D restored later,
    // so A is least-recently-used once unpinned).
    store.touch_restore(a, t0 + SimDuration::from_secs(1));
    store.touch_restore(d, t0 + SimDuration::from_secs(2));
    store.set_pinned(a, false).expect("unpin a");
    let leases = LeaseTable::new(SimDuration::from_secs(3600));
    // Demand one page beyond what is free: the sweep device is huge, so
    // this forces exactly one LRU eviction (A) regardless of capacity.
    let target = device.free_pages() + 1;
    let evicted = store.evict_for(target, &leases, t0 + SimDuration::from_secs(10));
    assert!(evicted.images >= 1, "eviction must claim image A");
    assert!(store.is_live(d), "survivor D must not be evicted");

    // Force a full compaction cycle (stage → publish → destroy-old).
    store.compact_journal();
}

/// Recovers the store from the surviving device and checks every
/// postcondition the sweep promises. Returns the report for the
/// bit-identity comparison.
fn recover_and_verify(
    device: &Arc<CxlDevice>,
    seed: u64,
    position: u64,
    site: &str,
) -> RecoveryReport {
    let (recovered, report) = Store::recover(Arc::clone(device), config(), NodeId(0));
    let ctx = format!("seed {seed}, kill position {position} ({site})");

    assert_eq!(
        report.fingerprint_mismatches, 0,
        "{ctx}: recovered index must pass the fingerprint cross-check: {report:?}"
    );

    // Zero violations across every auditor (check feature builds).
    #[cfg(feature = "check")]
    {
        use cxl_check::{audit_device, audit_device_with_live, audit_journal, audit_store};
        use cxl_store::{journal, ImageId};
        let mut violations = audit_device(device);
        violations.extend(audit_store(&recovered));
        violations.extend(audit_journal(&recovered));
        let mut live: Vec<cxl_mem::RegionId> = vec![recovered.data_region()];
        live.extend(journal::find_generations(device).iter().map(|g| g.region));
        for id in 1..=8u64 {
            if let Some(meta) = recovered.image_meta(ImageId(id)) {
                live.push(meta.meta_region);
            }
        }
        violations.extend(audit_device_with_live(device, live));
        assert!(violations.is_empty(), "{ctx}: {violations:?}");
    }

    // Balanced page accounting: every live device page is owned by a
    // region the audits above accepted, and the used-page counter
    // matches the slab (audit_device); additionally, the data region
    // holds exactly the index's pages — nothing leaked, nothing
    // double-freed.
    let index = recovered.index_snapshot();
    let data_pages: u64 = device
        .regions()
        .into_iter()
        .find(|(r, _)| *r == recovered.data_region())
        .map(|(_, usage)| usage.pages)
        .expect("data region exists");
    assert_eq!(
        data_pages,
        index.len() as u64,
        "{ctx}: data region pages must equal index entries"
    );

    // Byte-identical contents: every surviving index page still holds
    // exactly the bytes the scenario authored for its fingerprint.
    let authored = authored_contents(seed);
    for entry in &index {
        let expected = authored
            .get(&entry.fingerprint)
            .unwrap_or_else(|| panic!("{ctx}: unknown fingerprint {:#x}", entry.fingerprint));
        let actual = &device
            .snapshot_pages(&[entry.page])
            .expect("index page is live")[0];
        let (mut want, mut got) = (vec![0u8; PAGE_SIZE as usize], vec![0u8; PAGE_SIZE as usize]);
        expected.read(0, &mut want);
        actual.read(0, &mut got);
        assert_eq!(
            want, got,
            "{ctx}: content of {:#x} diverged",
            entry.fingerprint
        );
    }

    report
}

fn env_limit(name: &str) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(usize::MAX)
}

/// One full sweep for one seed: record the site sequence, then kill at
/// every position (bounded by `CRASH_SWEEP_POSITIONS`) and verify
/// recovery. Returns the per-position recovery reports.
fn sweep(seed: u64) -> Vec<RecoveryReport> {
    // Recording pass: a clean end-to-end run enumerating every site.
    let rec_device = device();
    let recorder = Arc::new(Recorder::new());
    scenario(
        &rec_device,
        Arc::clone(&recorder) as Arc<dyn CrashpointHook>,
        seed,
    );
    let sequence = recorder.sequence();
    let distinct = recorder.site_counts();
    assert!(
        sequence.len() >= 30,
        "the sweep must cover >= 30 injection positions, got {}: {distinct:?}",
        sequence.len()
    );
    assert!(
        distinct.len() >= 15,
        "the sweep must cover >= 15 distinct sites, got {}: {distinct:?}",
        distinct.len()
    );

    // The clean run must itself verify (position = past-the-end).
    let mut reports = Vec::new();
    reports.push(recover_and_verify(
        &rec_device,
        seed,
        sequence.len() as u64,
        "no-crash",
    ));

    // Kill-and-recover at every position.
    let bound = sequence.len().min(env_limit("CRASH_SWEEP_POSITIONS"));
    for (position, expected_site) in sequence.iter().enumerate().take(bound) {
        let dev = device();
        let killer = Arc::new(Killer::kill_at(position as u64));
        let outcome =
            run_to_crash(|| scenario(&dev, Arc::clone(&killer) as Arc<dyn CrashpointHook>, seed));
        let kill = outcome.expect_err("killer must fire inside the scenario");
        assert_eq!(kill.ordinal, position as u64);
        assert_eq!(&kill.site, expected_site, "site order must be stable");
        // The coordinator is dead: its Store was dropped by the unwind.
        // Only the device survives; recover from it.
        reports.push(recover_and_verify(&dev, seed, position as u64, kill.site));
    }
    reports
}

#[test]
fn every_crashpoint_recovers_with_zero_violations() {
    let seed_bound = SEEDS.len().min(env_limit("CRASH_SWEEP_SEEDS"));
    for &seed in &SEEDS[..seed_bound] {
        let first = sweep(seed);
        // Bit-identical per-seed reports: the whole sweep re-run must
        // reproduce every recovery exactly.
        let second = sweep(seed);
        assert_eq!(
            first, second,
            "seed {seed}: recovery must be bit-identical across sweep runs"
        );
    }
}
