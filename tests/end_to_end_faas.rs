//! End-to-end integration tests of the full FaaS stack: trace → CXLporter
//! → remote fork → invocation engine → OS substrate, on every mechanism.

use std::sync::Arc;

use cxlporter::{Cluster, CxlPorter, PorterConfig};
use simclock::{LatencyModel, SimDuration, SimTime};
use trace_gen::{generate, Invocation, TraceConfig};

fn trace(seed: u64, secs: f64, rps: f64) -> Vec<Invocation> {
    generate(&TraceConfig {
        duration_secs: secs,
        total_rps: rps,
        ..TraceConfig::paper_default(
            vec![
                "Json".into(),
                "Float".into(),
                "Pyaes".into(),
                "Linpack".into(),
            ],
            seed,
        )
    })
}

#[test]
fn cxlfork_porter_serves_a_bursty_trace() {
    let cluster = Cluster::new(2, 4096, 8192, LatencyModel::calibrated());
    let mut porter = CxlPorter::new(
        cluster,
        cxlfork::CxlFork::new(),
        PorterConfig::cxlfork_dynamic(),
    );
    let t = trace(11, 10.0, 40.0);
    let report = porter.run_trace(&t);
    assert_eq!(report.dropped, 0);
    assert_eq!(
        report.warm_hits + report.restores + report.full_cold,
        t.len() as u64
    );
    assert!(
        report.warm_ratio() > 0.8,
        "warm ratio {}",
        report.warm_ratio()
    );
    assert!(report.checkpoints >= 1);
    // Checkpoints live on the device.
    assert!(report.final_cxl_pages > 0);
    // `run_trace` already audits internally under `check`; assert once
    // more through the public API to pin it down.
    #[cfg(feature = "check")]
    assert_eq!(porter.audit(), Vec::new());
}

#[test]
fn all_mechanisms_complete_the_same_trace() {
    let t = trace(13, 6.0, 30.0);
    let mut served = Vec::new();

    let cluster = Cluster::new(2, 4096, 8192, LatencyModel::calibrated());
    let criu = criu_cxl::CriuCxl::new(Arc::new(cxl_mem::CxlFs::new(Arc::clone(&cluster.device))));
    let mut p = CxlPorter::new(cluster, criu, PorterConfig::criu());
    let r = p.run_trace(&t);
    served.push(("criu", r.warm_hits + r.restores + r.full_cold, r.dropped));

    let cluster = Cluster::new(2, 4096, 8192, LatencyModel::calibrated());
    let mut p = CxlPorter::new(
        cluster,
        mitosis_cxl::MitosisCxl::new(),
        PorterConfig::mitosis(),
    );
    let r = p.run_trace(&t);
    served.push(("mitosis", r.warm_hits + r.restores + r.full_cold, r.dropped));

    let cluster = Cluster::new(2, 4096, 8192, LatencyModel::calibrated());
    let mut p = CxlPorter::new(
        cluster,
        cxlfork::CxlFork::new(),
        PorterConfig::cxlfork_dynamic(),
    );
    let r = p.run_trace(&t);
    served.push(("cxlfork", r.warm_hits + r.restores + r.full_cold, r.dropped));

    for (name, count, dropped) in served {
        assert_eq!(count, t.len() as u64, "{name} served everything");
        assert_eq!(dropped, 0, "{name} dropped nothing");
    }
}

#[test]
fn burst_tail_latency_orders_cxlfork_under_criu() {
    // A deterministic warm-then-burst trace makes the tail comparable:
    // the burst is served cold by both mechanisms.
    let mut t = Vec::new();
    for i in 0..=6u64 {
        t.push(Invocation {
            time: SimTime::from_nanos(i * 1_000_000_000),
            function: "Linpack".into(),
            owner: 0,
        });
    }
    for i in 0..12u64 {
        t.push(Invocation {
            time: SimTime::from_nanos(9 * 1_000_000_000 + i),
            function: "Linpack".into(),
            owner: 0,
        });
    }

    let config = |mut c: PorterConfig| {
        c.checkpoint_after = 4;
        c
    };

    // Measure only the burst (the initial cold deployment is identical
    // under every mechanism).
    let burst_start = SimTime::from_nanos(8 * 1_000_000_000);

    let cluster = Cluster::new(2, 4096, 8192, LatencyModel::calibrated());
    let criu = criu_cxl::CriuCxl::new(Arc::new(cxl_mem::CxlFs::new(Arc::clone(&cluster.device))));
    let mut p = CxlPorter::new(cluster, criu, config(PorterConfig::criu()));
    p.set_measure_from(burst_start);
    let mut criu_report = p.run_trace(&t);

    let cluster = Cluster::new(2, 4096, 8192, LatencyModel::calibrated());
    let mut p = CxlPorter::new(
        cluster,
        cxlfork::CxlFork::new(),
        config(PorterConfig::cxlfork_dynamic()),
    );
    p.set_measure_from(burst_start);
    let mut fork_report = p.run_trace(&t);

    assert!(criu_report.restores > 0 && fork_report.restores > 0);
    let criu_p99 = criu_report.overall.p99();
    let fork_p99 = fork_report.overall.p99();
    assert!(
        fork_p99 * 3 < criu_p99,
        "CXLfork p99 {fork_p99} should be well under CRIU p99 {criu_p99}"
    );
}

#[test]
fn constrained_memory_favors_cxlfork_density() {
    // Small nodes: CRIU restores whole footprints, CXLfork shares via CXL.
    let t = trace(17, 8.0, 40.0);
    let mem_mib = 256;

    let cluster = Cluster::new(2, mem_mib, 8192, LatencyModel::calibrated());
    let criu = criu_cxl::CriuCxl::new(Arc::new(cxl_mem::CxlFs::new(Arc::clone(&cluster.device))));
    let mut p = CxlPorter::new(cluster, criu, PorterConfig::criu());
    let criu_report = p.run_trace(&t);

    let cluster = Cluster::new(2, mem_mib, 8192, LatencyModel::calibrated());
    let mut p = CxlPorter::new(
        cluster,
        cxlfork::CxlFork::new(),
        PorterConfig::cxlfork_dynamic(),
    );
    let fork_report = p.run_trace(&t);

    // CXLfork evicts/recycles less and keeps more requests warm.
    assert!(
        fork_report.recycles <= criu_report.recycles,
        "cxlfork recycles {} vs criu {}",
        fork_report.recycles,
        criu_report.recycles
    );
    assert!(fork_report.warm_ratio() >= criu_report.warm_ratio() - 0.02);
    // And it never uses more local memory at peak, modulo the ghost
    // containers CXLfork pre-provisions (CRIU cannot use them, §6.2).
    let ghost_allowance = 2 * 10 * faas::BARE_CONTAINER_PAGES;
    let fork_peak: u64 = fork_report.peak_local_pages.iter().sum();
    let criu_peak: u64 = criu_report.peak_local_pages.iter().sum();
    assert!(
        fork_peak <= criu_peak + ghost_allowance,
        "fork {fork_peak} vs criu {criu_peak}"
    );
}

#[test]
fn measurement_warmup_excludes_initial_cold_starts() {
    let t = trace(19, 6.0, 30.0);
    let cluster = Cluster::new(2, 4096, 8192, LatencyModel::calibrated());
    let mut p = CxlPorter::new(
        cluster,
        cxlfork::CxlFork::new(),
        PorterConfig::cxlfork_dynamic(),
    );
    p.set_measure_from(SimTime::ZERO + SimDuration::from_secs(3));
    let mut report = p.run_trace(&t);
    let in_window = t
        .iter()
        .filter(|i| i.time >= SimTime::ZERO + SimDuration::from_secs(3))
        .count();
    assert_eq!(report.overall.len(), in_window);
    // The steady-state window excludes the first-ever deployments, whose
    // container + state-init cost exceeds half a second.
    assert!(report.overall.p99() < SimDuration::from_millis(500));
}
